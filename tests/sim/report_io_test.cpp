#include "sim/report_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "util/contracts.h"

namespace o2o::sim {
namespace {

SimulationReport sample_report() {
  SimulationReport report;
  report.dispatcher_name = "sample";
  RequestRecord served;
  served.id = 0;
  served.request_time = 100.0;
  served.dispatch_time = 160.0;
  served.pickup_time = 300.0;
  served.dropoff_time = 700.0;
  served.dispatch_delay_minutes = 1.0;
  served.passenger_dissatisfaction_km = 2.5;
  served.shared = true;

  RequestRecord cancelled;
  cancelled.id = 1;
  cancelled.request_time = 9.0 * 3600.0;
  cancelled.cancelled = true;

  report.requests = {served, cancelled};
  report.served = 1;
  report.cancelled = 1;
  report.delay_cdf.add(1.0);
  report.passenger_cdf.add(2.5);
  report.taxi_cdf.add(-3.0);
  report.delay_stats.add(1.0);
  report.passenger_stats.add(2.5);
  report.taxi_stats.add(-3.0);
  report.hourly_delay.add(100.0, 1.0);
  report.hourly_passenger.add(100.0, 2.5);
  return report;
}

TEST(ReportIo, RecordsRoundTrip) {
  const SimulationReport original = sample_report();
  std::ostringstream out;
  write_request_records_csv(out, original);
  std::istringstream in(out.str());
  const SimulationReport loaded = read_request_records_csv(in, "sample");

  EXPECT_EQ(loaded.dispatcher_name, "sample");
  ASSERT_EQ(loaded.requests.size(), 2u);
  EXPECT_EQ(loaded.served, 1u);
  EXPECT_EQ(loaded.cancelled, 1u);
  const RequestRecord& served = loaded.requests[0];
  EXPECT_EQ(served.id, 0);
  EXPECT_TRUE(served.served());
  EXPECT_TRUE(served.shared);
  EXPECT_NEAR(served.dispatch_delay_minutes, 1.0, 1e-3);
  EXPECT_NEAR(served.passenger_dissatisfaction_km, 2.5, 1e-3);
  EXPECT_NEAR(served.pickup_time, 300.0, 1e-3);
  const RequestRecord& cancelled = loaded.requests[1];
  EXPECT_TRUE(cancelled.cancelled);
  EXPECT_FALSE(cancelled.served());
}

TEST(ReportIo, RebuildsAggregatesFromRows) {
  const SimulationReport original = sample_report();
  std::ostringstream out;
  write_request_records_csv(out, original);
  std::istringstream in(out.str());
  const SimulationReport loaded = read_request_records_csv(in, "sample");
  EXPECT_EQ(loaded.delay_cdf.count(), 1u);
  EXPECT_NEAR(loaded.delay_stats.mean(), 1.0, 1e-3);
  EXPECT_NEAR(loaded.passenger_stats.mean(), 2.5, 1e-3);
  EXPECT_EQ(loaded.hourly_delay.bucket(0).count(), 1u);  // request at 100 s
}

TEST(ReportIo, CdfColumnsAreSortedAndPadded) {
  SimulationReport report;
  report.delay_cdf.add(3.0);
  report.delay_cdf.add(1.0);
  report.passenger_cdf.add(2.0);
  std::ostringstream out;
  write_cdfs_csv(out, report);
  std::istringstream in(out.str());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "delay_minutes,passenger_km,taxi_km");
  std::getline(in, line);
  EXPECT_EQ(line, "1.0000,2.0000,");
  std::getline(in, line);
  EXPECT_EQ(line, "3.0000,,");
}

TEST(ReportIo, MissingColumnsThrow) {
  std::istringstream in("id,request_time\n1,0\n");
  EXPECT_THROW(read_request_records_csv(in, "x"), o2o::ContractViolation);
}

TEST(ReportIo, EmptyInputYieldsEmptyReport) {
  std::istringstream in(
      "id,request_time,dispatch_time,pickup_time,dropoff_time,"
      "dispatch_delay_minutes,passenger_dissatisfaction_km,shared,cancelled\n");
  const SimulationReport loaded = read_request_records_csv(in, "empty");
  EXPECT_TRUE(loaded.requests.empty());
  EXPECT_EQ(loaded.served, 0u);
}

}  // namespace
}  // namespace o2o::sim
