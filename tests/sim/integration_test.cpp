// End-to-end runs: every dispatcher (the paper's four stable variants and
// the five baselines) over a small synthetic city, checking global
// invariants and the paper's headline qualitative result -- the stable
// dispatchers' taxi dissatisfaction beats the passenger-only baselines'.
#include <gtest/gtest.h>

#include <memory>

#include "baselines/ilp.h"
#include "baselines/nonsharing.h"
#include "baselines/raii.h"
#include "baselines/sarp.h"
#include "core/dispatchers.h"
#include "sim/simulator.h"
#include "trace/fleet.h"
#include "trace/synthetic.h"

namespace o2o::sim {
namespace {

const geo::EuclideanOracle kOracle;

trace::Trace small_city_trace() {
  trace::CityModel model = trace::CityModel::boston();
  model.base_rate_per_hour = 120.0;
  trace::GenerationOptions options;
  options.duration_seconds = 2.0 * 3600.0;
  options.start_hour = 8.0;
  options.seed = 424242;
  options.max_seats = 2;
  return trace::generate(model, options);
}

std::vector<trace::Taxi> small_fleet(int count) {
  trace::FleetOptions options;
  options.taxi_count = count;
  options.seed = 11;
  return trace::make_fleet(geo::Rect{{-10, -10}, {10, 10}}, options);
}

SimulatorConfig config() {
  SimulatorConfig c;
  c.cancel_timeout_seconds = 1800.0;
  return c;
}

core::PreferenceParams tuned_preferences() {
  core::PreferenceParams params;
  params.passenger_threshold_km = 8.0;
  params.taxi_threshold_score = 6.0;
  return params;
}

std::vector<std::unique_ptr<Dispatcher>> all_dispatchers() {
  std::vector<std::unique_ptr<Dispatcher>> dispatchers;

  core::StableDispatcherOptions nstd;
  nstd.preference = tuned_preferences();
  dispatchers.push_back(std::make_unique<core::StableDispatcher>(nstd, core::FromConfig{}));
  nstd.side = core::ProposalSide::kTaxis;
  dispatchers.push_back(std::make_unique<core::StableDispatcher>(nstd, core::FromConfig{}));

  core::SharingStableDispatcherOptions std_options;
  std_options.params.preference = tuned_preferences();
  dispatchers.push_back(std::make_unique<core::SharingStableDispatcher>(std_options, core::FromConfig{}));
  std_options.params.side = core::ProposalSide::kTaxis;
  dispatchers.push_back(std::make_unique<core::SharingStableDispatcher>(std_options, core::FromConfig{}));

  dispatchers.push_back(std::make_unique<baselines::NonSharingBaseline>(
      baselines::NonSharingPolicy::kGreedy));
  dispatchers.push_back(std::make_unique<baselines::NonSharingBaseline>(
      baselines::NonSharingPolicy::kMinCost));
  dispatchers.push_back(std::make_unique<baselines::NonSharingBaseline>(
      baselines::NonSharingPolicy::kMinMax));
  dispatchers.push_back(std::make_unique<baselines::RaiiDispatcher>());
  dispatchers.push_back(std::make_unique<baselines::SarpDispatcher>());
  dispatchers.push_back(std::make_unique<baselines::IlpDispatcher>());
  return dispatchers;
}

TEST(Integration, EveryDispatcherSatisfiesGlobalInvariants) {
  const trace::Trace city = small_city_trace();
  ASSERT_GT(city.size(), 100u);
  for (auto& dispatcher : all_dispatchers()) {
    Simulator simulator(city, small_fleet(60), kOracle, config());
    const SimulationReport report = simulator.run(*dispatcher);
    SCOPED_TRACE(report.dispatcher_name);

    EXPECT_EQ(report.served + report.cancelled + report.pending_at_end, city.size());
    EXPECT_GT(report.served, city.size() / 2);  // the city is serviceable
    EXPECT_EQ(report.delay_cdf.count(), report.served);
    EXPECT_EQ(report.passenger_cdf.count(), report.served);
    EXPECT_GE(report.dispatched_rides, 1u);
    EXPECT_GT(report.total_taxi_distance_km, 0.0);
    if (report.served > 0) {
      EXPECT_GE(report.delay_cdf.min(), 0.0);
      EXPECT_GE(report.passenger_cdf.min(), -1e-9);
    }
    // Every served request has a consistent timeline.
    for (const RequestRecord& record : report.requests) {
      if (!record.served()) continue;
      EXPECT_GE(record.dispatch_time, record.request_time - 1e-9);
      if (record.dropoff_time >= 0.0) {
        EXPECT_GE(record.pickup_time, record.dispatch_time - 1e-9);
        EXPECT_GE(record.dropoff_time, record.pickup_time - 1e-9);
      }
    }
  }
}

TEST(Integration, StableDispatchImprovesTaxiDissatisfaction) {
  // The paper's central claim (Figs. 4c/5c): NSTD-P/T significantly beat
  // the passenger-only baselines on taxi dissatisfaction.
  const trace::Trace city = small_city_trace();
  const auto fleet = small_fleet(25);

  core::StableDispatcherOptions nstd;
  nstd.preference = tuned_preferences();
  core::StableDispatcher stable(nstd, core::FromConfig{});
  baselines::NonSharingBaseline greedy(baselines::NonSharingPolicy::kGreedy);

  Simulator sim_a(city, fleet, kOracle, config());
  Simulator sim_b(city, fleet, kOracle, config());
  const SimulationReport stable_report = sim_a.run(stable);
  const SimulationReport greedy_report = sim_b.run(greedy);

  ASSERT_GT(stable_report.taxi_stats.count(), 0u);
  ASSERT_GT(greedy_report.taxi_stats.count(), 0u);
  EXPECT_LT(stable_report.taxi_stats.mean(), greedy_report.taxi_stats.mean());
}

TEST(Integration, SharingDispatchersActuallyShare) {
  const trace::Trace city = small_city_trace();
  core::SharingStableDispatcherOptions options;
  options.params.preference = tuned_preferences();
  core::SharingStableDispatcher dispatcher(options, core::FromConfig{});
  Simulator simulator(city, small_fleet(15), kOracle, config());
  const SimulationReport report = simulator.run(dispatcher);
  EXPECT_GT(report.shared_rides, 0u);
}

TEST(Integration, MoreTaxisReduceDispatchDelay) {
  // Fig. 6a's qualitative shape.
  const trace::Trace city = small_city_trace();
  core::StableDispatcherOptions nstd;
  nstd.preference = tuned_preferences();
  core::StableDispatcher dispatcher(nstd, core::FromConfig{});

  Simulator scarce(city, small_fleet(8), kOracle, config());
  Simulator plentiful(city, small_fleet(60), kOracle, config());
  const SimulationReport scarce_report = scarce.run(dispatcher);
  const SimulationReport plentiful_report = plentiful.run(dispatcher);
  EXPECT_GT(scarce_report.delay_stats.mean(), plentiful_report.delay_stats.mean());
}

}  // namespace
}  // namespace o2o::sim
