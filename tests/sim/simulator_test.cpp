#include "sim/simulator.h"

#include <gtest/gtest.h>

#include "routing/route.h"
#include "util/contracts.h"

namespace o2o::sim {
namespace {

const geo::EuclideanOracle kOracle;

trace::Request make_request(double time, geo::Point pickup, geo::Point dropoff) {
  trace::Request request;
  request.time_seconds = time;
  request.pickup = pickup;
  request.dropoff = dropoff;
  return request;
}

std::vector<trace::Taxi> one_taxi_at(geo::Point p, int seats = 4) {
  trace::Taxi taxi;
  taxi.id = 0;
  taxi.location = p;
  taxi.seats = seats;
  return {taxi};
}

/// Dispatches every pending request to the nearest idle taxi, one per
/// frame -- the simplest correct dispatcher, used to drive the engine.
class NearestIdleDispatcher final : public Dispatcher {
 public:
  std::string name() const override { return "test-nearest"; }

  std::vector<DispatchAssignment> dispatch(const DispatchContext& context) override {
    std::vector<DispatchAssignment> assignments;
    std::vector<bool> used(context.idle_taxis.size(), false);
    for (const trace::Request& request : context.pending) {
      int best = -1;
      double best_distance = 0.0;
      for (std::size_t t = 0; t < context.idle_taxis.size(); ++t) {
        if (used[t]) continue;
        const double d =
            context.oracle->distance(context.idle_taxis[t].location, request.pickup);
        if (best < 0 || d < best_distance) {
          best = static_cast<int>(t);
          best_distance = d;
        }
      }
      if (best < 0) continue;
      used[static_cast<std::size_t>(best)] = true;
      DispatchAssignment assignment;
      assignment.taxi = context.idle_taxis[static_cast<std::size_t>(best)].id;
      assignment.requests = {request.id};
      assignment.route = routing::single_rider_route(
          request, context.idle_taxis[static_cast<std::size_t>(best)].location);
      assignments.push_back(std::move(assignment));
    }
    return assignments;
  }
};

/// Never dispatches anything.
class NullDispatcher final : public Dispatcher {
 public:
  std::string name() const override { return "test-null"; }
  std::vector<DispatchAssignment> dispatch(const DispatchContext&) override { return {}; }
};

SimulatorConfig fast_config() {
  SimulatorConfig config;
  config.frame_seconds = 60.0;
  config.speed_kmh = 60.0;  // 1 km per minute: easy arithmetic
  config.cancel_timeout_seconds = 1800.0;
  config.drain_seconds = 3600.0;
  return config;
}

TEST(Simulator, SingleRideLifecycle) {
  // Taxi at origin; request at t=0 from (1,0) to (3,0). Speed 1 km/min.
  const trace::Trace city("t", {{-10, -10}, {10, 10}},
                          {make_request(0.0, {1, 0}, {3, 0})});
  Simulator simulator(city, one_taxi_at({0, 0}), kOracle, fast_config());
  NearestIdleDispatcher dispatcher;
  const SimulationReport report = simulator.run(dispatcher);

  EXPECT_EQ(report.dispatcher_name, "test-nearest");
  ASSERT_EQ(report.requests.size(), 1u);
  const RequestRecord& record = report.requests[0];
  EXPECT_TRUE(record.served());
  EXPECT_DOUBLE_EQ(record.dispatch_time, 0.0);
  EXPECT_DOUBLE_EQ(record.dispatch_delay_minutes, 0.0);
  EXPECT_NEAR(record.pickup_time, 60.0, 1e-6);    // 1 km at 1 km/min
  EXPECT_NEAR(record.dropoff_time, 180.0, 1e-6);  // + 2 km ride
  EXPECT_NEAR(record.passenger_dissatisfaction_km, 1.0, 1e-9);
  EXPECT_FALSE(record.shared);
  EXPECT_EQ(report.served, 1u);
  EXPECT_EQ(report.cancelled, 0u);
  EXPECT_NEAR(report.total_taxi_distance_km, 3.0, 1e-9);
  // Taxi dissatisfaction: D(t, r.s) - alpha * D(r.s, r.d) = 1 - 2 = -1.
  ASSERT_EQ(report.taxi_cdf.count(), 1u);
  EXPECT_NEAR(report.taxi_cdf.min(), -1.0, 1e-9);
}

TEST(Simulator, BatchingDelaysLateArrivals) {
  // A request arriving mid-frame is seen at the next frame boundary.
  const trace::Trace city("t", {{-10, -10}, {10, 10}},
                          {make_request(30.0, {1, 0}, {2, 0})});
  Simulator simulator(city, one_taxi_at({0, 0}), kOracle, fast_config());
  NearestIdleDispatcher dispatcher;
  const SimulationReport report = simulator.run(dispatcher);
  EXPECT_NEAR(report.requests[0].dispatch_delay_minutes, 0.5, 1e-9);
}

TEST(Simulator, ConservationServedPlusCancelled) {
  std::vector<trace::Request> requests;
  for (int i = 0; i < 20; ++i) {
    requests.push_back(make_request(i * 30.0, {i % 5 - 2.0, i % 3 - 1.0},
                                    {i % 4 - 1.5, i % 5 - 2.0}));
  }
  const trace::Trace city("t", {{-10, -10}, {10, 10}}, std::move(requests));
  Simulator simulator(city, one_taxi_at({0, 0}), kOracle, fast_config());
  NearestIdleDispatcher dispatcher;
  const SimulationReport report = simulator.run(dispatcher);
  EXPECT_EQ(report.served + report.cancelled + report.pending_at_end, 20u);
  EXPECT_EQ(report.delay_cdf.count(), report.served);
}

TEST(Simulator, NullDispatcherCancelsEverything) {
  std::vector<trace::Request> requests{make_request(0.0, {1, 0}, {2, 0}),
                                       make_request(60.0, {2, 0}, {3, 0})};
  const trace::Trace city("t", {{-10, -10}, {10, 10}}, std::move(requests));
  Simulator simulator(city, one_taxi_at({0, 0}), kOracle, fast_config());
  NullDispatcher dispatcher;
  const SimulationReport report = simulator.run(dispatcher);
  EXPECT_EQ(report.served, 0u);
  EXPECT_EQ(report.cancelled, 2u);
  for (const RequestRecord& record : report.requests) {
    EXPECT_TRUE(record.cancelled);
    EXPECT_FALSE(record.served());
  }
}

TEST(Simulator, DeterministicAcrossRuns) {
  std::vector<trace::Request> requests;
  for (int i = 0; i < 15; ++i) {
    requests.push_back(
        make_request(i * 45.0, {i % 7 - 3.0, i % 5 - 2.0}, {i % 3 - 1.0, i % 7 - 3.0}));
  }
  const trace::Trace city("t", {{-10, -10}, {10, 10}}, std::move(requests));
  std::vector<trace::Taxi> fleet = one_taxi_at({0, 0});
  trace::Taxi second;
  second.id = 1;
  second.location = {2, 2};
  fleet.push_back(second);

  NearestIdleDispatcher dispatcher;
  Simulator sim_a(city, fleet, kOracle, fast_config());
  Simulator sim_b(city, fleet, kOracle, fast_config());
  const SimulationReport a = sim_a.run(dispatcher);
  const SimulationReport b = sim_b.run(dispatcher);
  ASSERT_EQ(a.requests.size(), b.requests.size());
  for (std::size_t i = 0; i < a.requests.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.requests[i].dispatch_time, b.requests[i].dispatch_time);
    EXPECT_DOUBLE_EQ(a.requests[i].dropoff_time, b.requests[i].dropoff_time);
  }
  EXPECT_DOUBLE_EQ(a.total_taxi_distance_km, b.total_taxi_distance_km);
}

// ------------------------------------------------- assignment policing

class MisbehavingDispatcher final : public Dispatcher {
 public:
  enum class Mode { kUnknownTaxi, kWrongStart, kBadPrecedence, kDoubleDispatch };
  explicit MisbehavingDispatcher(Mode mode) : mode_(mode) {}
  std::string name() const override { return "test-misbehaving"; }

  std::vector<DispatchAssignment> dispatch(const DispatchContext& context) override {
    if (context.pending.empty() || context.idle_taxis.empty()) return {};
    const trace::Request& request = context.pending.front();
    const trace::Taxi& taxi = context.idle_taxis.front();
    DispatchAssignment assignment;
    assignment.taxi = taxi.id;
    assignment.requests = {request.id};
    assignment.route = routing::single_rider_route(request, taxi.location);
    switch (mode_) {
      case Mode::kUnknownTaxi:
        assignment.taxi = 999;
        break;
      case Mode::kWrongStart:
        assignment.route.start = geo::Point{99, 99};
        break;
      case Mode::kBadPrecedence:
        std::swap(assignment.route.stops[0], assignment.route.stops[1]);
        break;
      case Mode::kDoubleDispatch:
        return {assignment, assignment};
    }
    return {assignment};
  }

 private:
  Mode mode_;
};

class SimulatorRejects
    : public ::testing::TestWithParam<MisbehavingDispatcher::Mode> {};

TEST_P(SimulatorRejects, InvalidAssignmentsThrow) {
  const trace::Trace city("t", {{-10, -10}, {10, 10}},
                          {make_request(0.0, {1, 0}, {2, 0})});
  Simulator simulator(city, one_taxi_at({0, 0}), kOracle, fast_config());
  MisbehavingDispatcher dispatcher(GetParam());
  EXPECT_THROW(simulator.run(dispatcher), o2o::ContractViolation);
}

INSTANTIATE_TEST_SUITE_P(
    Modes, SimulatorRejects,
    ::testing::Values(MisbehavingDispatcher::Mode::kUnknownTaxi,
                      MisbehavingDispatcher::Mode::kWrongStart,
                      MisbehavingDispatcher::Mode::kBadPrecedence,
                      MisbehavingDispatcher::Mode::kDoubleDispatch));

// ------------------------------------------------------ shared dispatch

/// Packs the first two pending requests onto one taxi.
class PairDispatcher final : public Dispatcher {
 public:
  std::string name() const override { return "test-pair"; }

  std::vector<DispatchAssignment> dispatch(const DispatchContext& context) override {
    if (context.pending.size() < 2 || context.idle_taxis.empty()) return {};
    const trace::Request& a = context.pending[0];
    const trace::Request& b = context.pending[1];
    const trace::Taxi& taxi = context.idle_taxis.front();
    DispatchAssignment assignment;
    assignment.taxi = taxi.id;
    assignment.requests = {a.id, b.id};
    assignment.route.start = taxi.location;
    assignment.route.stops = {routing::Stop{a.id, true, a.pickup},
                              routing::Stop{b.id, true, b.pickup},
                              routing::Stop{a.id, false, a.dropoff},
                              routing::Stop{b.id, false, b.dropoff}};
    return {assignment};
  }
};

TEST(Simulator, SharedRideMetrics) {
  // Taxi at 0; A: (1,0)->(3,0); B: (2,0)->(4,0). Route length 4.
  std::vector<trace::Request> requests{make_request(0.0, {1, 0}, {3, 0}),
                                       make_request(0.0, {2, 0}, {4, 0})};
  const trace::Trace city("t", {{-10, -10}, {10, 10}}, std::move(requests));
  Simulator simulator(city, one_taxi_at({0, 0}), kOracle, fast_config());
  PairDispatcher dispatcher;
  const SimulationReport report = simulator.run(dispatcher);

  EXPECT_EQ(report.served, 2u);
  EXPECT_EQ(report.shared_rides, 1u);
  EXPECT_EQ(report.dispatched_rides, 1u);
  ASSERT_EQ(report.requests.size(), 2u);
  EXPECT_TRUE(report.requests[0].shared);
  // A waits 1 km, rides 2 km (direct 2): dissatisfaction 1 + 0 = 1.
  EXPECT_NEAR(report.requests[0].passenger_dissatisfaction_km, 1.0, 1e-9);
  // B waits 2 km, rides 2 km (direct 2): dissatisfaction 2.
  EXPECT_NEAR(report.requests[1].passenger_dissatisfaction_km, 2.0, 1e-9);
  // Taxi: D_ck(t) - 2 * (2 + 2) = 4 - 8 = -4.
  EXPECT_NEAR(report.taxi_cdf.min(), -4.0, 1e-9);
  EXPECT_NEAR(report.total_taxi_distance_km, 4.0, 1e-9);
  // Pickup/dropoff ordering along the route.
  EXPECT_LT(report.requests[0].pickup_time, report.requests[1].pickup_time);
  EXPECT_LT(report.requests[0].dropoff_time, report.requests[1].dropoff_time);
}

TEST(Simulator, CapacityViolationIsRejected) {
  std::vector<trace::Request> requests{make_request(0.0, {1, 0}, {3, 0}),
                                       make_request(0.0, {2, 0}, {4, 0})};
  const trace::Trace city("t", {{-10, -10}, {10, 10}}, std::move(requests));
  Simulator simulator(city, one_taxi_at({0, 0}, /*seats=*/1), kOracle, fast_config());
  PairDispatcher dispatcher;
  EXPECT_THROW(simulator.run(dispatcher), o2o::ContractViolation);
}

}  // namespace
}  // namespace o2o::sim
