// Differential proof obligations for the simulator's incremental-grid
// mode (SimulatorConfig::incremental_grid): patching the idle snapshot
// and its spatial index across frames must reproduce the rebuilt-
// per-frame reports on continuous geometry — the idle span is a
// permutation of the rebuilt one, which can only matter when two taxis
// score exactly equal for a request, a measure-zero event on the
// synthetic traces used here.
#include <gtest/gtest.h>

#include <memory>
#include <string_view>

#include "core/dispatch_config.h"
#include "obs/obs.h"
#include "sim/simulator.h"
#include "trace/fleet.h"
#include "trace/synthetic.h"

namespace o2o::sim {
namespace {

const geo::EuclideanOracle kOracle;

trace::Trace busy_city_trace() {
  trace::CityModel model = trace::CityModel::boston();
  model.base_rate_per_hour = 200.0;
  trace::GenerationOptions options;
  options.duration_seconds = 3600.0;
  options.start_hour = 18.0;
  options.seed = 60601;
  options.max_seats = 2;
  return trace::generate(model, options);
}

std::vector<trace::Taxi> fleet_of(std::size_t count) {
  trace::FleetOptions options;
  options.taxi_count = count;
  options.seed = 11;
  return trace::make_fleet(geo::Rect{{-10, -10}, {10, 10}}, options);
}

DispatchConfig tuned_config() {
  return DispatchConfig{}
      .with_passenger_threshold_km(8.0)
      .with_taxi_threshold_score(6.0)
      .with_detour_threshold_km(5.0);
}

SimulationReport run(Dispatcher& dispatcher, bool incremental,
                     obs::TraceSink* sink = nullptr) {
  SimulatorConfig config;
  config.cancel_timeout_seconds = 1800.0;
  config.incremental_grid = incremental;
  config.trace_sink = sink;
  const trace::Trace city = busy_city_trace();
  Simulator simulator(city, fleet_of(30), kOracle, config);
  return simulator.run(dispatcher);
}

void expect_identical(const SimulationReport& a, const SimulationReport& b) {
  EXPECT_EQ(a.served, b.served);
  EXPECT_EQ(a.cancelled, b.cancelled);
  EXPECT_DOUBLE_EQ(a.total_taxi_distance_km, b.total_taxi_distance_km);
  ASSERT_EQ(a.requests.size(), b.requests.size());
  for (std::size_t i = 0; i < a.requests.size(); ++i) {
    const RequestRecord& ra = a.requests[i];
    const RequestRecord& rb = b.requests[i];
    EXPECT_EQ(ra.id, rb.id);
    EXPECT_EQ(ra.dispatch_time, rb.dispatch_time) << "request " << ra.id;
    EXPECT_EQ(ra.pickup_time, rb.pickup_time) << "request " << ra.id;
    EXPECT_EQ(ra.dropoff_time, rb.dropoff_time) << "request " << ra.id;
    EXPECT_EQ(ra.shared, rb.shared) << "request " << ra.id;
    EXPECT_EQ(ra.cancelled, rb.cancelled) << "request " << ra.id;
    EXPECT_EQ(ra.passenger_dissatisfaction_km, rb.passenger_dissatisfaction_km);
  }
}

void run_differential(std::string_view kind) {
  const DispatchConfig config = tuned_config();
  const auto rebuilt = make_dispatcher(kind, config);
  const auto patched = make_dispatcher(kind, config);
  ASSERT_NE(rebuilt, nullptr);
  ASSERT_NE(patched, nullptr);

  const SimulationReport baseline = run(*rebuilt, /*incremental=*/false);
  obs::TraceSink sink;
  const SimulationReport incremental = run(*patched, /*incremental=*/true, &sink);

  expect_identical(baseline, incremental);
  // The patched path really ran: idle churn produced grid patches (the
  // grid's own mutation counter feeds the registry).
  const obs::FrameTrace& total = sink.aggregate();
  EXPECT_GT(total.counters[static_cast<std::size_t>(obs::Counter::kGridPatches)], 0u);
  EXPECT_GT(total.stage_ns[static_cast<std::size_t>(obs::Stage::kGridPatch)], 0u);
}

TEST(IncrementalGrid, NonSharingReportsMatchTheRebuiltGrid) {
  run_differential("nstd-p");
}

TEST(IncrementalGrid, SharingReportsMatchTheRebuiltGrid) {
  run_differential("std-p");
}

TEST(IncrementalGrid, RepeatedIncrementalRunsAreDeterministic) {
  const DispatchConfig config = tuned_config();
  const auto first = make_dispatcher("nstd-p", config);
  const auto second = make_dispatcher("nstd-p", config);
  expect_identical(run(*first, /*incremental=*/true),
                   run(*second, /*incremental=*/true));
}

}  // namespace
}  // namespace o2o::sim
