// Road-network kinematics: with SimulatorConfig::road_network set, taxis
// drive along network shortest paths, so travel times and driven
// distance reflect road lengths rather than straight lines.
#include <gtest/gtest.h>

#include "geo/road_network.h"
#include "sim/simulator.h"

namespace o2o::sim {
namespace {

trace::Request make_request(double time, geo::Point pickup, geo::Point dropoff) {
  trace::Request request;
  request.time_seconds = time;
  request.pickup = pickup;
  request.dropoff = dropoff;
  return request;
}

/// Assigns everything pending to the single taxi when idle.
class SoloDispatcher final : public Dispatcher {
 public:
  std::string name() const override { return "test-solo"; }
  std::vector<DispatchAssignment> dispatch(const DispatchContext& context) override {
    if (context.idle_taxis.empty() || context.pending.empty()) return {};
    DispatchAssignment assignment;
    assignment.taxi = context.idle_taxis.front().id;
    assignment.requests = {context.pending.front().id};
    assignment.route = routing::single_rider_route(context.pending.front(),
                                                   context.idle_taxis.front().location);
    return {assignment};
  }
};

TEST(DrivePath, FollowsTheGrid) {
  const geo::RoadNetwork grid = geo::RoadNetwork::make_grid_city(6, 6, 1.0);
  const auto path = grid.drive_path({0, 0}, {3, 4});
  ASSERT_GE(path.size(), 2u);
  EXPECT_EQ(path.front(), (geo::Point{0, 0}));
  EXPECT_EQ(path.back(), (geo::Point{3, 4}));
  double length = 0.0;
  for (std::size_t i = 1; i < path.size(); ++i) {
    length += geo::euclidean_distance(path[i - 1], path[i]);
  }
  EXPECT_NEAR(length, 7.0, 1e-9);  // rectilinear, not the 5 km diagonal
}

TEST(DrivePath, SameSnapNodeDegeneratesToTheSegment) {
  const geo::RoadNetwork grid = geo::RoadNetwork::make_grid_city(3, 3, 10.0);
  const auto path = grid.drive_path({1.0, 1.0}, {2.0, 1.5});
  EXPECT_EQ(path.size(), 2u);
}

TEST(NetworkMovement, TravelTimesReflectRoadDistances) {
  // Grid city, taxi at (0,0), ride from (2,0) to (2,3): road distance is
  // 2 + 3 = 5 km. At 60 km/h the drop-off lands at t = 300 s, vs
  // ~2 + 3 = 5 straight-line here too -- so use a diagonal ride where the
  // metrics differ: (2,0) -> (5,4): road 3+4=7 km, straight 5 km.
  const geo::RoadNetwork grid = geo::RoadNetwork::make_grid_city(8, 8, 1.0);
  const trace::Trace city("t", {{0, 0}, {7, 7}}, {make_request(0.0, {2, 0}, {5, 4})});
  trace::Taxi taxi;
  taxi.id = 0;
  taxi.location = {0, 0};
  taxi.seats = 4;

  SimulatorConfig config;
  config.speed_kmh = 60.0;  // 1 km/min
  config.road_network = &grid;
  SoloDispatcher dispatcher;
  Simulator simulator(city, {taxi}, geo::EuclideanOracle{}, config);
  const SimulationReport report = simulator.run(dispatcher);

  ASSERT_EQ(report.served, 1u);
  const RequestRecord& record = report.requests[0];
  // Pick-up leg (0,0)->(2,0): 2 km of road -> 120 s.
  EXPECT_NEAR(record.pickup_time, 120.0, 1e-6);
  // Ride leg (2,0)->(5,4): 7 km of road -> +420 s.
  EXPECT_NEAR(record.dropoff_time, 540.0, 1e-6);
  EXPECT_NEAR(report.total_taxi_distance_km, 9.0, 1e-6);
}

TEST(NetworkMovement, StraightLineModeIsUnchanged) {
  const trace::Trace city("t", {{0, 0}, {7, 7}}, {make_request(0.0, {2, 0}, {5, 4})});
  trace::Taxi taxi;
  taxi.id = 0;
  taxi.location = {0, 0};
  taxi.seats = 4;
  SimulatorConfig config;
  config.speed_kmh = 60.0;
  SoloDispatcher dispatcher;
  Simulator simulator(city, {taxi}, geo::EuclideanOracle{}, config);
  const SimulationReport report = simulator.run(dispatcher);
  EXPECT_NEAR(report.requests[0].dropoff_time, (2.0 + 5.0) * 60.0, 1e-6);
  EXPECT_NEAR(report.total_taxi_distance_km, 7.0, 1e-6);
}

TEST(NetworkMovement, MidLegFramesResumeOnThePolyline) {
  // 20 km/h (1/3 km per minute): the 9 km road journey spans many frames;
  // the taxi must stay on the grid and still finish with exact totals.
  const geo::RoadNetwork grid = geo::RoadNetwork::make_grid_city(8, 8, 1.0);
  const trace::Trace city("t", {{0, 0}, {7, 7}}, {make_request(0.0, {2, 0}, {5, 4})});
  trace::Taxi taxi;
  taxi.id = 0;
  taxi.location = {0, 0};
  taxi.seats = 4;
  SimulatorConfig config;
  config.speed_kmh = 20.0;
  config.road_network = &grid;
  SoloDispatcher dispatcher;
  Simulator simulator(city, {taxi}, geo::EuclideanOracle{}, config);
  const SimulationReport report = simulator.run(dispatcher);
  ASSERT_EQ(report.served, 1u);
  EXPECT_NEAR(report.total_taxi_distance_km, 9.0, 1e-6);
  EXPECT_NEAR(report.requests[0].dropoff_time, 9.0 / 20.0 * 3600.0, 1e-6);
}

}  // namespace
}  // namespace o2o::sim
