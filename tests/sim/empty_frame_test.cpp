// Degenerate dispatch frames: zero pending requests, zero idle taxis, or
// both. These lock in the from_scores taxi-count fix — a zero-request
// frame must still report the live fleet size — and prove the whole
// Simulator::run loop survives empty traces and empty fleets under both
// stable dispatchers.
#include <gtest/gtest.h>

#include "core/dispatchers.h"
#include "core/sharing.h"
#include "core/stable_matching.h"
#include "sim/simulator.h"
#include "trace/trace.h"

namespace o2o {
namespace {

const geo::EuclideanOracle kOracle;
const geo::Rect kRegion{{0.0, 0.0}, {10.0, 10.0}};

std::vector<trace::Taxi> small_fleet(int count) {
  std::vector<trace::Taxi> fleet;
  for (int t = 0; t < count; ++t) {
    fleet.push_back({t, {1.0 + t, 2.0}, 4});
  }
  return fleet;
}

std::vector<trace::Request> few_requests(int count) {
  std::vector<trace::Request> requests;
  for (int r = 0; r < count; ++r) {
    trace::Request request;
    request.id = r;
    request.time_seconds = 30.0 * r;
    request.pickup = {2.0, 2.0 + r};
    request.dropoff = {6.0, 2.0 + r};
    requests.push_back(request);
  }
  return requests;
}

TEST(EmptyFrame, ZeroRequestProfileKeepsFleetSize) {
  const auto profile = core::PreferenceProfile::from_scores({}, {}, 5);
  EXPECT_EQ(profile.request_count(), 0u);
  EXPECT_EQ(profile.taxi_count(), 5u);
  const core::Matching matching = core::gale_shapley_taxis(profile);
  EXPECT_TRUE(matching.request_to_taxi.empty());
  EXPECT_EQ(matching.taxi_to_request.size(), 5u);
}

TEST(EmptyFrame, StableDispatchersSurviveEmptyTraceThroughSimulatorRun) {
  const trace::Trace empty_trace("empty", kRegion, {});
  for (const core::ProposalSide side :
       {core::ProposalSide::kPassengers, core::ProposalSide::kTaxis}) {
    core::StableDispatcherOptions options;
    options.side = side;
    core::StableDispatcher dispatcher(options, core::FromConfig{});
    sim::Simulator simulator(empty_trace, small_fleet(4), kOracle);
    const sim::SimulationReport report = simulator.run(dispatcher);
    EXPECT_EQ(report.served, 0u);
    EXPECT_EQ(report.cancelled, 0u);
    EXPECT_EQ(report.dispatched_rides, 0u);
    EXPECT_TRUE(report.requests.empty());
  }
}

TEST(EmptyFrame, SharingDispatcherSurvivesEmptyTraceThroughSimulatorRun) {
  const trace::Trace empty_trace("empty", kRegion, {});
  core::SharingStableDispatcherOptions options;
  core::SharingStableDispatcher dispatcher(options, core::FromConfig{});
  sim::Simulator simulator(empty_trace, small_fleet(3), kOracle);
  const sim::SimulationReport report = simulator.run(dispatcher);
  EXPECT_EQ(report.served, 0u);
  EXPECT_EQ(report.dispatched_rides, 0u);
}

TEST(EmptyFrame, EmptyFleetLeavesEveryRequestUnserved) {
  const trace::Trace trace("no-fleet", kRegion, few_requests(3));
  sim::SimulatorConfig config;
  config.cancel_timeout_seconds = 120.0;
  config.drain_seconds = 300.0;
  for (const core::ProposalSide side :
       {core::ProposalSide::kPassengers, core::ProposalSide::kTaxis}) {
    core::StableDispatcherOptions options;
    options.side = side;
    core::StableDispatcher dispatcher(options, core::FromConfig{});
    sim::Simulator simulator(trace, {}, kOracle, config);
    const sim::SimulationReport report = simulator.run(dispatcher);
    EXPECT_EQ(report.served, 0u);
    EXPECT_EQ(report.cancelled, 3u);
  }
  core::SharingStableDispatcherOptions sharing_options;
  core::SharingStableDispatcher sharing(sharing_options, core::FromConfig{});
  sim::Simulator simulator(trace, {}, kOracle, config);
  const sim::SimulationReport report = simulator.run(sharing);
  EXPECT_EQ(report.served, 0u);
  EXPECT_EQ(report.cancelled, 3u);
}

TEST(EmptyFrame, DispatchSharingHandlesZeroRequestsOnBothSides) {
  const std::vector<trace::Taxi> taxis = small_fleet(4);
  for (const core::ProposalSide side :
       {core::ProposalSide::kPassengers, core::ProposalSide::kTaxis}) {
    core::SharingParams params;
    params.side = side;
    const core::SharingOutcome outcome =
        core::dispatch_sharing(taxis, {}, kOracle, params);
    EXPECT_TRUE(outcome.assignments.empty());
    EXPECT_TRUE(outcome.unserved_request_indices.empty());
    EXPECT_EQ(outcome.packed_groups, 0u);
  }
}

}  // namespace
}  // namespace o2o
