#include "util/thread_pool.h"

#include <atomic>
#include <gtest/gtest.h>
#include <stdexcept>
#include <vector>

namespace o2o {
namespace {

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, hits.size(), /*grain=*/7, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ZeroWorkersRunInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.worker_count(), 0u);
  int sum = 0;
  // With no workers, the body runs on the caller, so unsynchronized
  // state is safe.
  pool.parallel_for(5, 10, 2, [&](std::size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum, 5 + 6 + 7 + 8 + 9);
}

TEST(ThreadPool, EmptyRangeIsANoOp) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(4, 4, 1, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ExceptionPropagatesToTheCaller) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(0, 100, 1,
                                 [](std::size_t i) {
                                   if (i == 42) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  // The pool must still be usable afterwards.
  std::atomic<int> count{0};
  pool.parallel_for(0, 50, 4, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, SharedPoolIsReusableAcrossCalls) {
  ThreadPool& pool = ThreadPool::shared();
  for (int round = 0; round < 3; ++round) {
    std::atomic<int> count{0};
    pool.parallel_for(0, 200, 16, [&](std::size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 200);
  }
}

}  // namespace
}  // namespace o2o
