#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

namespace o2o {
namespace {

TEST(SplitMix64, MixIsDeterministicAndNontrivial) {
  EXPECT_EQ(SplitMix64::mix(42), SplitMix64::mix(42));
  EXPECT_NE(SplitMix64::mix(42), SplitMix64::mix(43));
  EXPECT_EQ(SplitMix64::mix(0), 0u);  // zero is the mixer's only fixed point
  EXPECT_NE(SplitMix64::mix(1), 1u);
}

TEST(SplitMix64, SequentialDrawsDiffer) {
  SplitMix64 sm(7);
  const auto a = sm();
  const auto b = sm();
  EXPECT_NE(a, b);
}

TEST(Xoshiro, SameSeedSameStream) {
  Xoshiro256pp a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, DifferentSeedsDiverge) {
  Xoshiro256pp a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Xoshiro, JumpChangesTheStream) {
  Xoshiro256pp a(9), b(9);
  b.jump();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformIsInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.5, 7.25);
    EXPECT_GE(u, -3.5);
    EXPECT_LT(u, 7.25);
  }
}

TEST(Rng, UniformRangeRejectsInvertedBounds) {
  Rng rng(6);
  EXPECT_THROW(rng.uniform(1.0, 0.0), ContractViolation);
}

TEST(Rng, UniformIndexCoversAllValues) {
  Rng rng(7);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 5000; ++i) ++counts[rng.uniform_index(5)];
  for (int c : counts) EXPECT_GT(c, 800);  // ~1000 each
}

TEST(Rng, UniformIndexRejectsZero) {
  Rng rng(7);
  EXPECT_THROW(rng.uniform_index(0), ContractViolation);
}

TEST(Rng, UniformIntIsInclusive) {
  Rng rng(8);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(9);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(10);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(2.0, 3.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(var, 9.0, 0.4);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Rng, PoissonSmallMean) {
  Rng rng(12);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(3.0));
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(Rng, PoissonLargeMeanUsesNormalApproximation) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(200.0));
  EXPECT_NEAR(sum / n, 200.0, 2.0);
}

TEST(Rng, PoissonZeroMeanIsZero) {
  Rng rng(14);
  EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(15);
  std::vector<int> items(100);
  std::iota(items.begin(), items.end(), 0);
  std::vector<int> shuffled = items;
  rng.shuffle(shuffled);
  EXPECT_FALSE(std::is_sorted(shuffled.begin(), shuffled.end()));
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);
}

TEST(Rng, SplitStreamsAreDecorrelated) {
  Rng parent(16);
  Rng child = parent.split();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.next_u64() == child.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

class RngSeedDeterminism : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedDeterminism, IdenticalSeedsProduceIdenticalDraws) {
  Rng a(GetParam()), b(GetParam());
  for (int i = 0; i < 32; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
    EXPECT_DOUBLE_EQ(a.normal(), b.normal());
    EXPECT_EQ(a.poisson(2.5), b.poisson(2.5));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedDeterminism,
                         ::testing::Values(0ull, 1ull, 42ull, 0xdeadbeefull,
                                           0xffffffffffffffffull));

}  // namespace
}  // namespace o2o
