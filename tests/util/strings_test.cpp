#include "util/strings.h"

#include <gtest/gtest.h>

namespace o2o {
namespace {

TEST(Split, BasicFields) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(Split, KeepsEmptyFields) {
  EXPECT_EQ(split("a,,c,", ','), (std::vector<std::string>{"a", "", "c", ""}));
}

TEST(Split, SingleFieldWithoutSeparator) {
  EXPECT_EQ(split("plain", ','), (std::vector<std::string>{"plain"}));
}

TEST(Split, EmptyInputYieldsOneEmptyField) {
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
}

TEST(Trim, RemovesSurroundingWhitespace) {
  EXPECT_EQ(trim("  hello \t\n"), "hello");
  EXPECT_EQ(trim("no-op"), "no-op");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(Trim, KeepsInteriorWhitespace) { EXPECT_EQ(trim(" a b "), "a b"); }

TEST(Join, ConcatenatesWithSeparator) {
  EXPECT_EQ(join({"x", "y", "z"}, ", "), "x, y, z");
  EXPECT_EQ(join({"only"}, ","), "only");
  EXPECT_EQ(join({}, ","), "");
}

TEST(ToLower, AsciiOnly) {
  EXPECT_EQ(to_lower("MiXeD 123 Case"), "mixed 123 case");
}

TEST(StartsEndsWith, Basics) {
  EXPECT_TRUE(starts_with("taxi_dispatch", "taxi"));
  EXPECT_FALSE(starts_with("taxi", "taxi_dispatch"));
  EXPECT_TRUE(ends_with("report.csv", ".csv"));
  EXPECT_FALSE(ends_with("csv", "report.csv"));
  EXPECT_TRUE(starts_with("x", ""));
  EXPECT_TRUE(ends_with("x", ""));
}

TEST(ParseDouble, AcceptsPlainNumbers) {
  EXPECT_EQ(parse_double("3.25"), 3.25);
  EXPECT_EQ(parse_double("-40.74"), -40.74);
  EXPECT_EQ(parse_double("  7 "), 7.0);
  EXPECT_EQ(parse_double("1e3"), 1000.0);
}

TEST(ParseDouble, RejectsGarbage) {
  EXPECT_FALSE(parse_double("").has_value());
  EXPECT_FALSE(parse_double("abc").has_value());
  EXPECT_FALSE(parse_double("1.5x").has_value());
  EXPECT_FALSE(parse_double("--3").has_value());
}

TEST(ParseInt, AcceptsIntegers) {
  EXPECT_EQ(parse_int("42"), 42);
  EXPECT_EQ(parse_int("-17"), -17);
  EXPECT_EQ(parse_int(" 0 "), 0);
}

TEST(ParseInt, RejectsNonIntegers) {
  EXPECT_FALSE(parse_int("3.5").has_value());
  EXPECT_FALSE(parse_int("").has_value());
  EXPECT_FALSE(parse_int("12abc").has_value());
}

TEST(FormatFixed, RoundsToRequestedDecimals) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(2.5, 0), "2");  // banker's-free snprintf rounding
  EXPECT_EQ(format_fixed(-1.005, 1), "-1.0");
  EXPECT_EQ(format_fixed(0.0, 3), "0.000");
}

}  // namespace
}  // namespace o2o
