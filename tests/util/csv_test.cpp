#include "util/csv.h"

#include <gtest/gtest.h>

#include "util/contracts.h"

#include <sstream>

namespace o2o {
namespace {

TEST(ParseCsvLine, PlainFields) {
  EXPECT_EQ(parse_csv_line("a,b,c"), (CsvRow{"a", "b", "c"}));
}

TEST(ParseCsvLine, QuotedFieldWithSeparator) {
  EXPECT_EQ(parse_csv_line(R"(x,"a,b",y)"), (CsvRow{"x", "a,b", "y"}));
}

TEST(ParseCsvLine, EscapedQuotes) {
  EXPECT_EQ(parse_csv_line(R"("say ""hi""",2)"), (CsvRow{R"(say "hi")", "2"}));
}

TEST(ParseCsvLine, TrailingEmptyField) {
  EXPECT_EQ(parse_csv_line("a,"), (CsvRow{"a", ""}));
}

TEST(FormatCsvLine, QuotesOnlyWhenNeeded) {
  EXPECT_EQ(format_csv_line({"a", "b c", "d,e"}), R"(a,b c,"d,e")");
  EXPECT_EQ(format_csv_line({R"(q"q)"}), R"("q""q")");
}

TEST(FormatParse, RoundTripsArbitraryFields) {
  const CsvRow original{"plain", "with,comma", R"(with "quote")", "", "tail"};
  EXPECT_EQ(parse_csv_line(format_csv_line(original)), original);
}

TEST(CsvTable, ParsesHeaderAndRows) {
  const auto table = CsvTable::parse("id,name\n1,alpha\n2,beta\n");
  EXPECT_EQ(table.row_count(), 2u);
  EXPECT_EQ(table.column("id"), 0);
  EXPECT_EQ(table.column("name"), 1);
  EXPECT_EQ(table.column("missing"), -1);
  EXPECT_EQ(table.field(0, 1), "alpha");
  EXPECT_EQ(table.field(1, 0), "2");
}

TEST(CsvTable, HeaderLookupTrimsWhitespace) {
  const auto table = CsvTable::parse(" id , name \n1,a\n");
  EXPECT_EQ(table.column("id"), 0);
  EXPECT_EQ(table.column("name"), 1);
}

TEST(CsvTable, SkipsBlankLinesAndCarriageReturns) {
  const auto table = CsvTable::parse("a,b\r\n\r\n1,2\r\n");
  EXPECT_EQ(table.row_count(), 1u);
  EXPECT_EQ(table.field(0, 1), "2");
}

TEST(CsvTable, RaggedShortRowYieldsEmptyField) {
  const auto table = CsvTable::parse("a,b,c\n1,2\n");
  EXPECT_EQ(table.field(0, 2), "");
}

TEST(CsvTable, NoHeaderMode) {
  const auto table = CsvTable::parse("1,2\n3,4\n", /*has_header=*/false);
  EXPECT_EQ(table.row_count(), 2u);
  EXPECT_TRUE(table.header().empty());
}

TEST(CsvTable, ReadFileThrowsOnMissingPath) {
  EXPECT_THROW(CsvTable::read_file("/nonexistent/definitely/missing.csv"),
               std::runtime_error);
}

TEST(CsvTable, FieldOutOfRangeRowThrows) {
  const auto table = CsvTable::parse("a\n1\n");
  EXPECT_THROW(table.field(5, 0), ContractViolation);
}

TEST(CsvWriter, WritesRowsWithNewlines) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.write_row({"h1", "h2"});
  writer.write_row({"v,1", "v2"});
  EXPECT_EQ(out.str(), "h1,h2\n\"v,1\",v2\n");
}

TEST(CsvWriter, RoundTripsThroughTable) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.write_row({"x", "y"});
  writer.write_row({"1.5", "quoted \"text\""});
  const auto table = CsvTable::parse(out.str());
  EXPECT_EQ(table.field(0, 0), "1.5");
  EXPECT_EQ(table.field(0, 1), "quoted \"text\"");
}

TEST(CsvTable, AlternativeSeparator) {
  const auto table = CsvTable::parse("a;b\n1;2\n", true, ';');
  EXPECT_EQ(table.field(0, 1), "2");
}

}  // namespace
}  // namespace o2o
