#include "util/contracts.h"

#include <gtest/gtest.h>

namespace o2o {
namespace {

int checked_divide(int a, int b) {
  O2O_EXPECTS(b != 0);
  return a / b;
}

int checked_abs(int a) {
  const int result = a < 0 ? -a : a;
  O2O_ENSURES(result >= 0);
  return result;
}

TEST(Contracts, SatisfiedPreconditionIsSilent) {
  EXPECT_EQ(checked_divide(10, 2), 5);
}

TEST(Contracts, ViolatedPreconditionThrows) {
  EXPECT_THROW(checked_divide(1, 0), ContractViolation);
}

TEST(Contracts, ViolationIsALogicError) {
  EXPECT_THROW(checked_divide(1, 0), std::logic_error);
}

TEST(Contracts, MessageNamesTheExpressionAndKind) {
  try {
    checked_divide(1, 0);
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& violation) {
    const std::string message = violation.what();
    EXPECT_NE(message.find("precondition"), std::string::npos);
    EXPECT_NE(message.find("b != 0"), std::string::npos);
    EXPECT_NE(message.find("contracts_test.cpp"), std::string::npos);
  }
}

TEST(Contracts, SatisfiedPostconditionIsSilent) {
  EXPECT_EQ(checked_abs(-3), 3);
  EXPECT_EQ(checked_abs(4), 4);
}

TEST(Contracts, PostconditionMessageSaysPostcondition) {
  try {
    O2O_ENSURES(1 == 2);
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& violation) {
    EXPECT_NE(std::string(violation.what()).find("postcondition"), std::string::npos);
  }
}

TEST(Contracts, ConditionIsEvaluatedExactlyOnce) {
  int evaluations = 0;
  O2O_EXPECTS([&] {
    ++evaluations;
    return true;
  }());
  EXPECT_EQ(evaluations, 1);
}

}  // namespace
}  // namespace o2o
