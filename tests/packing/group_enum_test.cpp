// The group-enumeration pipeline's dedicated suite: the conservative
// SIMD / cone kernels must keep every exactly-feasible pair (rejection
// is a proof), the GroupCache must replay verbatim verdicts and honour
// its invalidation invariants, and every knob combination -- {SIMD,
// cone, cache-cold, cache-warm} x oracle -- must reproduce the serial
// dense scan bit for bit, including at θ and radius boundaries.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <utility>
#include <vector>

#include "core/sharing.h"
#include "geo/road_network.h"
#include "obs/obs.h"
#include "packing/group_enum.h"
#include "packing/groups.h"
#include "util/rng.h"
#include "util/simd.h"

namespace o2o::packing {
namespace {

const geo::EuclideanOracle kOracle;

trace::Request make_request(trace::RequestId id, geo::Point pickup, geo::Point dropoff,
                            int seats = 1) {
  trace::Request request;
  request.id = id;
  request.pickup = pickup;
  request.dropoff = dropoff;
  request.seats = seats;
  return request;
}

/// City-style frame: pick-ups over an `extent_km` square, trips 1-4 km.
std::vector<trace::Request> make_city_requests(int count, std::uint64_t seed,
                                               double extent_km) {
  Rng rng(seed);
  std::vector<trace::Request> requests;
  requests.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const geo::Point pickup{rng.uniform(0.0, extent_km), rng.uniform(0.0, extent_km)};
    const double angle = rng.uniform(0.0, 6.283185307179586);
    const double trip = rng.uniform(1.0, 4.0);
    const geo::Point dropoff{pickup.x + trip * std::cos(angle),
                             pickup.y + trip * std::sin(angle)};
    requests.push_back(make_request(i, pickup, dropoff, 1 + (i % 2)));
  }
  return requests;
}

void expect_routes_equal(const routing::Route& a, const routing::Route& b) {
  ASSERT_EQ(a.start.has_value(), b.start.has_value());
  if (a.start.has_value()) {
    EXPECT_EQ(a.start->x, b.start->x);
    EXPECT_EQ(a.start->y, b.start->y);
  }
  ASSERT_EQ(a.stops.size(), b.stops.size());
  for (std::size_t s = 0; s < a.stops.size(); ++s) {
    EXPECT_EQ(a.stops[s].request, b.stops[s].request);
    EXPECT_EQ(a.stops[s].is_pickup, b.stops[s].is_pickup);
    EXPECT_EQ(a.stops[s].point.x, b.stops[s].point.x);
    EXPECT_EQ(a.stops[s].point.y, b.stops[s].point.y);
  }
}

void expect_groups_equal(const std::vector<ShareGroup>& actual,
                         const std::vector<ShareGroup>& expected) {
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t g = 0; g < actual.size(); ++g) {
    EXPECT_EQ(actual[g].member_indices, expected[g].member_indices);
    EXPECT_EQ(actual[g].pooled_length_km, expected[g].pooled_length_km);
    EXPECT_EQ(actual[g].direct_sum_km, expected[g].direct_sum_km);
    EXPECT_EQ(actual[g].max_detour_km, expected[g].max_detour_km);
    EXPECT_EQ(actual[g].member_direct_km, expected[g].member_direct_km);
    expect_routes_equal(actual[g].pooled_route, expected[g].pooled_route);
  }
}

/// Runs the engine under every {simd, cone} combination plus a cold and
/// a warm cached pass, each compared bit-for-bit against the serial
/// dense scan of the same frame.
void run_knob_matrix(const std::vector<trace::Request>& requests,
                     const geo::DistanceOracle& oracle, GroupOptions options) {
  options.parallel = false;
  const auto serial = enumerate_share_groups(requests, oracle, options);
  options.parallel = true;
  for (const bool simd : {false, true}) {
    for (const bool cone : {false, true}) {
      SCOPED_TRACE(::testing::Message() << "simd=" << simd << " cone=" << cone);
      options.simd_prefilter = simd;
      options.direction_cone = cone;
      options.cross_frame_cache = false;
      expect_groups_equal(enumerate_share_groups(requests, oracle, options), serial);
      options.cross_frame_cache = true;
      GroupCache cache;
      expect_groups_equal(enumerate_share_groups(requests, oracle, options, 4, &cache),
                          serial);  // cold
      expect_groups_equal(enumerate_share_groups(requests, oracle, options, 4, &cache),
                          serial);  // warm replay
    }
  }
}

// ---------------------------------------------------------------------------
// SIMD pair certificate: conservative with respect to the exact scan.

struct PairLegsStorage {
  std::vector<double> a, a2, b, b2, c, c2, di, dj;
  std::vector<std::pair<std::size_t, std::size_t>> pairs;

  simd::PairLegsSoA view() const {
    return {a.data(), a2.data(), b.data(),  b2.data(),
            c.data(), c2.data(), di.data(), dj.data()};
  }
};

PairLegsStorage gather_all_pair_legs(const std::vector<trace::Request>& requests,
                                     const geo::DistanceOracle& oracle) {
  PairLegsStorage legs;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    for (std::size_t j = i + 1; j < requests.size(); ++j) {
      const trace::Request& ri = requests[i];
      const trace::Request& rj = requests[j];
      legs.a.push_back(oracle.distance(ri.pickup, rj.pickup));
      legs.a2.push_back(oracle.distance(rj.pickup, ri.pickup));
      legs.b.push_back(oracle.distance(rj.pickup, ri.dropoff));
      legs.b2.push_back(oracle.distance(ri.pickup, rj.dropoff));
      legs.c.push_back(oracle.distance(ri.dropoff, rj.dropoff));
      legs.c2.push_back(oracle.distance(rj.dropoff, ri.dropoff));
      legs.di.push_back(oracle.distance(ri.pickup, ri.dropoff));
      legs.dj.push_back(oracle.distance(rj.pickup, rj.dropoff));
      legs.pairs.emplace_back(i, j);
    }
  }
  return legs;
}

std::set<std::pair<std::size_t, std::size_t>> exact_feasible_pairs(
    const std::vector<trace::Request>& requests, const geo::DistanceOracle& oracle,
    double theta) {
  GroupOptions options;
  options.detour_threshold_km = theta;
  options.max_group_size = 2;
  options.parallel = false;
  std::set<std::pair<std::size_t, std::size_t>> feasible;
  for (const ShareGroup& group : enumerate_share_groups(requests, oracle, options)) {
    feasible.emplace(group.member_indices[0], group.member_indices[1]);
  }
  return feasible;
}

TEST(SimdKernel, BackendResolvesToOneName) {
  const simd::Backend backend = simd::active_backend();
  EXPECT_FALSE(simd::backend_name(backend).empty());
#if defined(O2O_SIMD_SCALAR_ONLY)
  EXPECT_EQ(backend, simd::Backend::kScalar);
#endif
  EXPECT_EQ(simd::batch_count(0), 0u);
  EXPECT_EQ(simd::batch_count(1), 1u);
  EXPECT_EQ(simd::batch_count(8), 1u);
  EXPECT_EQ(simd::batch_count(9), 2u);
}

TEST(SimdKernel, CertificateKeepsEveryExactlyFeasiblePair) {
  for (const std::uint64_t seed : {7u, 8u, 9u}) {
    const auto requests = make_city_requests(40, seed, 12.0);
    const double theta = 3.0;
    const auto feasible = exact_feasible_pairs(requests, kOracle, theta);
    ASSERT_FALSE(feasible.empty());

    const PairLegsStorage legs = gather_all_pair_legs(requests, kOracle);
    std::vector<std::uint8_t> keep(legs.pairs.size(), 0);
    simd::pair_filter(legs.view(), legs.pairs.size(), theta, kFilterPadKm, keep.data());
    for (std::size_t k = 0; k < legs.pairs.size(); ++k) {
      if (feasible.count(legs.pairs[k]) != 0) {
        EXPECT_EQ(keep[k], 1) << "feasible pair (" << legs.pairs[k].first << ", "
                              << legs.pairs[k].second << ") rejected by the certificate";
      }
    }
  }
}

TEST(SimdKernel, RejectsFarApartAndOppositePairs) {
  // Far apart: no order can come close to saving.
  std::vector<trace::Request> far{make_request(0, {0.0, 0.0}, {2.0, 0.0}),
                                  make_request(1, {100.0, 0.0}, {102.0, 0.0})};
  PairLegsStorage legs = gather_all_pair_legs(far, kOracle);
  std::vector<std::uint8_t> keep(1, 1);
  EXPECT_EQ(simd::pair_filter(legs.view(), 1, 5.0, kFilterPadKm, keep.data()), 0u);
  EXPECT_EQ(keep[0], 0);

  // Offset head-on trips: every interleaved order backtracks at least
  // 2 km past the direct sum, so no saving exists even with an infinite
  // θ. (An exactly mirrored pair would sit *on* the saving boundary,
  // which the conservative filter keeps by design.)
  std::vector<trace::Request> opposite{make_request(0, {0.0, 0.0}, {5.0, 0.0}),
                                       make_request(1, {7.0, 0.0}, {2.0, 0.0})};
  legs = gather_all_pair_legs(opposite, kOracle);
  keep.assign(1, 1);
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(simd::pair_filter(legs.view(), 1, inf, kFilterPadKm, keep.data()), 0u);
  EXPECT_EQ(keep[0], 0);

  // Same-direction overlap: order p0 p1 d0 d1 saves 3 km; must be kept.
  std::vector<trace::Request> overlap{make_request(0, {0.0, 0.0}, {4.0, 0.0}),
                                      make_request(1, {1.0, 0.0}, {5.0, 0.0})};
  legs = gather_all_pair_legs(overlap, kOracle);
  keep.assign(1, 0);
  EXPECT_EQ(simd::pair_filter(legs.view(), 1, inf, kFilterPadKm, keep.data()), 1u);
  EXPECT_EQ(keep[0], 1);
}

TEST(ConeKernel, EllipseKeepsEveryExactlyFeasiblePair) {
  for (const std::uint64_t seed : {11u, 12u}) {
    const auto requests = make_city_requests(40, seed, 12.0);
    const double theta = 3.0;
    const auto feasible = exact_feasible_pairs(requests, kOracle, theta);
    ASSERT_FALSE(feasible.empty());

    std::vector<double> pix, piy, dix, diy, pjx, pjy, djx, djy, bi, bj;
    std::vector<std::pair<std::size_t, std::size_t>> pairs;
    for (std::size_t i = 0; i < requests.size(); ++i) {
      for (std::size_t j = i + 1; j < requests.size(); ++j) {
        pix.push_back(requests[i].pickup.x);
        piy.push_back(requests[i].pickup.y);
        dix.push_back(requests[i].dropoff.x);
        diy.push_back(requests[i].dropoff.y);
        pjx.push_back(requests[j].pickup.x);
        pjy.push_back(requests[j].pickup.y);
        djx.push_back(requests[j].dropoff.x);
        djy.push_back(requests[j].dropoff.y);
        bi.push_back(kOracle.distance(requests[i].pickup, requests[i].dropoff) + theta);
        bj.push_back(kOracle.distance(requests[j].pickup, requests[j].dropoff) + theta);
        pairs.emplace_back(i, j);
      }
    }
    const simd::ConeSoA soa{pix.data(), piy.data(), dix.data(), diy.data(),
                            pjx.data(), pjy.data(), djx.data(), djy.data(),
                            bi.data(),  bj.data()};
    std::vector<std::uint8_t> keep(pairs.size(), 0);
    simd::cone_filter(soa, pairs.size(), kFilterPadKm, keep.data());
    for (std::size_t k = 0; k < pairs.size(); ++k) {
      if (feasible.count(pairs[k]) != 0) {
        EXPECT_EQ(keep[k], 1) << "feasible pair (" << pairs[k].first << ", "
                              << pairs[k].second << ") rejected by the cone";
      }
    }
  }
}

TEST(ConeKernel, PrunePreservesKeyOrder) {
  const auto requests = make_city_requests(32, 13, 14.0);
  const double theta = 2.0;
  std::vector<double> direct(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    direct[i] = kOracle.distance(requests[i].pickup, requests[i].dropoff);
  }
  std::vector<std::uint64_t> keys;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    for (std::size_t j = i + 1; j < requests.size(); ++j) {
      keys.push_back((static_cast<std::uint64_t>(i) << 32) | j);
    }
  }
  const std::vector<std::uint64_t> before = keys;
  const FilterStats stats = cone_prune_pairs(requests, direct, theta, keys);
  EXPECT_EQ(stats.kept, keys.size());
  EXPECT_EQ(stats.kept + stats.rejected, before.size());
  EXPECT_GT(stats.rejected, 0u);  // a spread city always has diverging pairs
  // Survivors are a subsequence of the input (order preserved).
  std::size_t cursor = 0;
  for (const std::uint64_t key : keys) {
    while (cursor < before.size() && before[cursor] != key) ++cursor;
    ASSERT_LT(cursor, before.size());
    ++cursor;
  }
}

// ---------------------------------------------------------------------------
// GroupCache invariants.

GroupOptions cache_options() {
  GroupOptions options;
  options.detour_threshold_km = 3.0;
  return options;
}

TEST(GroupCacheTest, ReplaysStoredVerdictsBitForBit) {
  auto requests = make_city_requests(6, 3, 4.0);
  const GroupOptions options = cache_options();
  GroupCache cache;
  cache.begin_frame(requests, options, 4, &kOracle);

  const std::size_t members[2] = {0, 1};
  ShareGroup out;
  EXPECT_EQ(cache.try_get(members, 2, out), GroupCache::Verdict::kMiss);

  bool feasible = false;
  const ShareGroup exact =
      evaluate_group(requests, {0, 1}, kOracle, options, 4, feasible);
  cache.store(members, 2, feasible, exact);
  EXPECT_EQ(cache.stats().stores, 1u);

  cache.begin_frame(requests, options, 4, &kOracle);
  const GroupCache::Verdict verdict = cache.try_get(members, 2, out);
  if (feasible) {
    ASSERT_EQ(verdict, GroupCache::Verdict::kFeasible);
    expect_groups_equal({out}, {exact});
  } else {
    EXPECT_EQ(verdict, GroupCache::Verdict::kInfeasible);
  }
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(GroupCacheTest, InfeasibleVerdictsReplayWithoutPayload) {
  // Two trips that can never pool: the verdict caches as kInfeasible.
  std::vector<trace::Request> requests{make_request(0, {0.0, 0.0}, {2.0, 0.0}),
                                       make_request(1, {50.0, 0.0}, {52.0, 0.0})};
  const GroupOptions options = cache_options();
  GroupCache cache;
  cache.begin_frame(requests, options, 4, &kOracle);
  const std::size_t members[2] = {0, 1};
  bool feasible = true;
  const ShareGroup exact =
      evaluate_group(requests, {0, 1}, kOracle, options, 4, feasible);
  ASSERT_FALSE(feasible);
  cache.store(members, 2, feasible, exact);
  ShareGroup out;
  EXPECT_EQ(cache.try_get(members, 2, out), GroupCache::Verdict::kInfeasible);
}

TEST(GroupCacheTest, ContentChangeInvalidatesTouchedEntries) {
  auto requests = make_city_requests(6, 5, 4.0);
  const GroupOptions options = cache_options();
  GroupCache cache;
  cache.begin_frame(requests, options, 4, &kOracle);
  const std::size_t members[2] = {0, 1};
  bool feasible = false;
  const ShareGroup exact =
      evaluate_group(requests, {0, 1}, kOracle, options, 4, feasible);
  cache.store(members, 2, feasible, exact);

  requests[0].pickup.x += 0.25;  // edit rider 0 -> stamp bump
  cache.begin_frame(requests, options, 4, &kOracle);
  ShareGroup out;
  EXPECT_EQ(cache.try_get(members, 2, out), GroupCache::Verdict::kMiss);
  EXPECT_EQ(cache.stats().invalidated, 1u);
}

TEST(GroupCacheTest, FingerprintChangeFlushesEverything) {
  auto requests = make_city_requests(6, 7, 4.0);
  GroupOptions options = cache_options();
  GroupCache cache;
  cache.begin_frame(requests, options, 4, &kOracle);
  const std::size_t members[2] = {0, 1};
  bool feasible = false;
  const ShareGroup exact =
      evaluate_group(requests, {0, 1}, kOracle, options, 4, feasible);
  cache.store(members, 2, feasible, exact);
  ASSERT_EQ(cache.size(), 1u);

  options.detour_threshold_km = 4.5;  // θ enters the fingerprint
  cache.begin_frame(requests, options, 4, &kOracle);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().flushes, 1u);
  ShareGroup out;
  EXPECT_EQ(cache.try_get(members, 2, out), GroupCache::Verdict::kMiss);
}

TEST(GroupCacheTest, KeyIsOrderSensitive) {
  auto requests = make_city_requests(6, 9, 4.0);
  const GroupOptions options = cache_options();
  GroupCache cache;
  cache.begin_frame(requests, options, 4, &kOracle);
  const std::size_t forward[2] = {0, 1};
  const std::size_t swapped[2] = {1, 0};
  bool feasible = false;
  const ShareGroup exact =
      evaluate_group(requests, {0, 1}, kOracle, options, 4, feasible);
  cache.store(forward, 2, feasible, exact);
  ShareGroup out;
  EXPECT_EQ(cache.try_get(swapped, 2, out), GroupCache::Verdict::kMiss);
}

TEST(GroupCacheTest, StaleEntriesAreGarbageCollected) {
  auto requests = make_city_requests(6, 15, 4.0);
  const GroupOptions options = cache_options();
  GroupCache cache;
  cache.begin_frame(requests, options, 4, &kOracle);
  const std::size_t members[2] = {0, 1};
  bool feasible = false;
  const ShareGroup exact =
      evaluate_group(requests, {0, 1}, kOracle, options, 4, feasible);
  cache.store(members, 2, feasible, exact);
  ASSERT_EQ(cache.size(), 1u);

  // Never touch the entry again: after a sweep period it must be gone.
  for (int frame = 0; frame < 24; ++frame) {
    cache.begin_frame(requests, options, 4, &kOracle);
  }
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_GE(cache.stats().invalidated, 1u);
}

// ---------------------------------------------------------------------------
// Knob matrix x oracle differentials.

TEST(KnobMatrix, EuclideanOracleMatchesSerial) {
  GroupOptions options;
  options.detour_threshold_km = 3.0;
  for (const std::uint64_t seed : {17u, 18u}) {
    run_knob_matrix(make_city_requests(48, seed, 14.0), kOracle, options);
  }
}

TEST(KnobMatrix, ManhattanOracleMatchesSerial) {
  const geo::ManhattanOracle oracle;
  GroupOptions options;
  options.detour_threshold_km = 3.0;
  run_knob_matrix(make_city_requests(44, 19, 13.0), oracle, options);
}

TEST(KnobMatrix, CircuityOracleMatchesSerial) {
  const geo::CircuityOracle oracle(1.3);
  GroupOptions options;
  options.detour_threshold_km = 3.0;
  run_knob_matrix(make_city_requests(44, 21, 13.0), oracle, options);
}

TEST(KnobMatrix, NetworkOracleMatchesSerial) {
  // Asymmetric oracle: the leg gather must take the reverse-row path.
  const geo::RoadNetwork city = geo::RoadNetwork::make_grid_city(10, 10, 1.0, 0.15, 0.1, 7);
  const geo::NetworkOracle oracle(city);
  ASSERT_FALSE(oracle.capabilities().symmetric_distances);
  Rng rng(23);
  std::vector<trace::Request> requests;
  for (int i = 0; i < 32; ++i) {
    const geo::Point pickup{rng.uniform(0.5, 8.5), rng.uniform(0.5, 8.5)};
    const geo::Point dropoff{rng.uniform(0.5, 8.5), rng.uniform(0.5, 8.5)};
    requests.push_back(make_request(i, pickup, dropoff));
  }
  GroupOptions options;
  options.detour_threshold_km = 2.5;
  run_knob_matrix(requests, oracle, options);
}

TEST(KnobMatrix, NoSavingConstraintDisablesSimdAndCone) {
  // require_saving = false voids both conservative filters' premises;
  // the engine must gate them off and still match the serial scan.
  GroupOptions options;
  options.detour_threshold_km = 2.0;
  options.require_saving = false;
  options.pickup_radius_km = 3.0;
  run_knob_matrix(make_city_requests(36, 25, 10.0), kOracle, options);
}

TEST(KnobMatrix, TriplesAndSeatLimitsMatchSerial) {
  GroupOptions options;
  options.detour_threshold_km = 4.0;
  const auto requests = make_city_requests(36, 27, 8.0);  // dense: triples exist
  run_knob_matrix(requests, kOracle, options);
}

// ---------------------------------------------------------------------------
// θ and radius boundaries.

TEST(ThetaBoundary, ZeroThetaStillPoolsZeroDetourPairs) {
  // Identical trips pool with zero detour and positive saving, so θ = 0
  // keeps exactly those; every knob combination must agree.
  std::vector<trace::Request> requests;
  requests.push_back(make_request(0, {0.0, 0.0}, {3.0, 0.0}));
  requests.push_back(make_request(1, {0.0, 0.0}, {3.0, 0.0}));
  requests.push_back(make_request(2, {10.0, 10.0}, {12.0, 10.0}));
  requests.push_back(make_request(3, {5.0, 5.0}, {5.0, 8.0}));
  GroupOptions options;
  options.detour_threshold_km = 0.0;
  options.parallel = false;
  const auto serial = enumerate_share_groups(requests, kOracle, options);
  ASSERT_EQ(serial.size(), 1u);
  EXPECT_EQ(serial[0].member_indices, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(serial[0].max_detour_km, 0.0);
  run_knob_matrix(requests, kOracle, options);
}

TEST(ThetaBoundary, DetourExactlyAtThetaIsFeasibleOnEveryPath) {
  // Pin θ to a realized max detour: the witness group sits exactly on
  // the boundary (the check is `detour > θ`, so equality is feasible)
  // and every knob combination must keep it.
  const auto requests = make_city_requests(40, 29, 10.0);
  GroupOptions wide;
  wide.detour_threshold_km = 6.0;
  wide.max_group_size = 2;
  wide.parallel = false;
  double theta = 0.0;
  for (const ShareGroup& group : enumerate_share_groups(requests, kOracle, wide)) {
    theta = std::max(theta, group.max_detour_km);
  }
  ASSERT_GT(theta, 0.0);

  GroupOptions edge;
  edge.detour_threshold_km = theta;
  edge.max_group_size = 2;
  edge.parallel = false;
  const auto at_edge = enumerate_share_groups(requests, kOracle, edge);
  EXPECT_TRUE(std::any_of(at_edge.begin(), at_edge.end(), [&](const ShareGroup& g) {
    return g.max_detour_km == theta;
  }));
  run_knob_matrix(requests, kOracle, edge);

  // One ulp below the witness detour: still bit-identical everywhere,
  // and nothing exceeds the tightened bound.
  GroupOptions below = edge;
  below.detour_threshold_km = std::nextafter(theta, 0.0);
  const auto under = enumerate_share_groups(requests, kOracle, below);
  for (const ShareGroup& group : under) {
    EXPECT_LE(group.max_detour_km, below.detour_threshold_km);
  }
  run_knob_matrix(requests, kOracle, below);
}

TEST(RadiusBoundary, PickupRadiusTieMatchesSerial) {
  // Pick-ups exactly pickup_radius_km apart sit on the grid prefilter's
  // boundary; the accelerated paths must agree with the serial scan on
  // which side of it every pair lands.
  std::vector<trace::Request> requests;
  requests.push_back(make_request(0, {0.0, 0.0}, {5.0, 0.0}));
  requests.push_back(make_request(1, {2.0, 0.0}, {7.0, 0.0}));  // exactly 2 km away
  requests.push_back(make_request(2, {4.0, 0.0}, {9.0, 0.0}));  // exactly 2 km from 1
  auto extra = make_city_requests(24, 33, 9.0);
  for (auto& request : extra) {
    request.id += 10;
    requests.push_back(request);
  }
  GroupOptions options;
  options.detour_threshold_km = 5.0;
  options.pickup_radius_km = 2.0;
  run_knob_matrix(requests, kOracle, options);
}

// ---------------------------------------------------------------------------
// Cross-frame persistence under churn.

TEST(CrossFrameCache, PerturbedFramesStayBitIdentical) {
  auto requests = make_city_requests(56, 35, 14.0);
  GroupOptions options;
  options.detour_threshold_km = 3.0;
  GroupCache cache;
  Rng rng(99);
  trace::RequestId next_id = 1000;
  for (int frame = 0; frame < 5; ++frame) {
    SCOPED_TRACE(::testing::Message() << "frame=" << frame);
    GroupOptions warm = options;
    warm.parallel = true;
    const auto cached = enumerate_share_groups(requests, kOracle, warm, 4, &cache);
    GroupOptions serial = options;
    serial.parallel = false;
    expect_groups_equal(cached, enumerate_share_groups(requests, kOracle, serial));

    // ~15% churn preserving survivor order (the simulator's FIFO shape):
    // drop some riders, edit one in place, append fresh arrivals.
    std::vector<trace::Request> next;
    for (const trace::Request& request : requests) {
      if (rng.uniform(0.0, 1.0) >= 0.15) next.push_back(request);
    }
    if (!next.empty()) next.front().pickup.x += 0.05;
    for (int added = 0; added < 8; ++added) {
      const geo::Point pickup{rng.uniform(0.0, 14.0), rng.uniform(0.0, 14.0)};
      next.push_back(make_request(next_id++, pickup,
                                  {pickup.x + rng.uniform(-3.0, 3.0),
                                   pickup.y + rng.uniform(-3.0, 3.0)}));
    }
    requests = std::move(next);
  }
  EXPECT_GT(cache.stats().hits, 0u);
  EXPECT_GT(cache.stats().invalidated, 0u);
}

// ---------------------------------------------------------------------------
// Candidate persistence: warm frames replay persisted neighbor lists and
// must stay bit-identical to the serial dense scan at every churn rate.

/// One simulator-shaped churn step: drop ~rate of the riders (order
/// preserved), nudge one survivor's pickup in place, append arrivals.
std::vector<trace::Request> churn_step(const std::vector<trace::Request>& requests,
                                       double rate, double extent_km, Rng& rng,
                                       trace::RequestId& next_id) {
  std::vector<trace::Request> next;
  for (const trace::Request& request : requests) {
    if (rng.uniform(0.0, 1.0) >= rate) next.push_back(request);
  }
  if (!next.empty()) next.front().pickup.x += 0.05;
  const int arrivals = std::max(1, static_cast<int>(rate * static_cast<double>(requests.size())));
  for (int added = 0; added < arrivals; ++added) {
    const geo::Point pickup{rng.uniform(0.0, extent_km), rng.uniform(0.0, extent_km)};
    next.push_back(make_request(next_id++, pickup,
                                {pickup.x + rng.uniform(-3.0, 3.0),
                                 pickup.y + rng.uniform(-3.0, 3.0)}));
  }
  return next;
}

TEST(CandidatePersistence, ChurnRatesStayBitIdentical) {
  for (const double rate : {0.02, 0.15, 0.5}) {
    SCOPED_TRACE(::testing::Message() << "churn=" << rate);
    auto requests = make_city_requests(64, 41, 14.0);
    GroupOptions options;
    options.detour_threshold_km = 3.0;
    GroupCache cache;
    Rng rng(107);
    trace::RequestId next_id = 2000;
    for (int frame = 0; frame < 6; ++frame) {
      SCOPED_TRACE(::testing::Message() << "frame=" << frame);
      GroupOptions warm = options;
      warm.parallel = true;
      warm.persist_candidates = true;
      const auto persisted = enumerate_share_groups(requests, kOracle, warm, 4, &cache);
      GroupOptions serial = options;
      serial.parallel = false;
      expect_groups_equal(persisted, enumerate_share_groups(requests, kOracle, serial));
      requests = churn_step(requests, rate, 14.0, rng, next_id);
    }
  }
}

TEST(CandidatePersistence, WarmFramesActuallyReuseLists) {
  obs::TraceSink sink;
  obs::Activation guard(sink);
  auto requests = make_city_requests(72, 43, 15.0);
  GroupOptions options;
  options.detour_threshold_km = 3.0;
  options.parallel = true;
  GroupCache cache;
  Rng rng(111);
  trace::RequestId next_id = 3000;
  const auto counter = [](const obs::FrameTrace& frame, obs::Counter which) {
    return frame.counters[static_cast<std::size_t>(which)];
  };
  sink.begin_frame(0, 0.0);
  enumerate_share_groups(requests, kOracle, options, 4, &cache);
  const obs::FrameTrace cold = sink.end_frame();
  EXPECT_EQ(counter(cold, obs::Counter::kCandidatesReused), 0u);
  requests = churn_step(requests, 0.05, 15.0, rng, next_id);
  sink.begin_frame(1, 60.0);
  enumerate_share_groups(requests, kOracle, options, 4, &cache);
  const obs::FrameTrace hot = sink.end_frame();
  EXPECT_GT(counter(hot, obs::Counter::kCandidatesReused), 0u);
  EXPECT_GT(counter(hot, obs::Counter::kGridPatches), 0u);
}

TEST(CandidatePersistence, RadiusChangeAndKnobTogglesStaySound) {
  // Persisted lists are keyed to one pickup radius; changing it (or the
  // filter knobs, which are *not* part of the fingerprint) mid-stream
  // must still reproduce the serial scan of every frame.
  auto requests = make_city_requests(56, 47, 13.0);
  GroupOptions options;
  options.detour_threshold_km = 3.0;
  GroupCache cache;
  Rng rng(113);
  trace::RequestId next_id = 4000;
  const double radii[] = {std::numeric_limits<double>::infinity(), 4.0, 4.0, 2.5, 2.5, 4.0};
  for (int frame = 0; frame < 6; ++frame) {
    SCOPED_TRACE(::testing::Message() << "frame=" << frame);
    GroupOptions warm = options;
    warm.parallel = true;
    warm.pickup_radius_km = radii[frame];
    warm.simd_prefilter = frame % 2 == 0;
    warm.direction_cone = frame % 3 != 0;
    const auto persisted = enumerate_share_groups(requests, kOracle, warm, 4, &cache);
    GroupOptions serial = warm;
    serial.parallel = false;
    expect_groups_equal(persisted, enumerate_share_groups(requests, kOracle, serial));
    requests = churn_step(requests, 0.1, 13.0, rng, next_id);
  }
}

TEST(CandidatePersistence, AbsentThenReturningIdReenumeratesFresh) {
  // An id that skips a frame breaks its cand_epoch chain and must come
  // back as churn, not replay a stale list.
  auto requests = make_city_requests(24, 53, 8.0);
  GroupOptions options;
  options.detour_threshold_km = 3.0;
  options.parallel = true;
  GroupCache cache;
  const auto compare = [&](const std::vector<trace::Request>& frame) {
    const auto persisted = enumerate_share_groups(frame, kOracle, options, 4, &cache);
    GroupOptions serial = options;
    serial.parallel = false;
    expect_groups_equal(persisted, enumerate_share_groups(frame, kOracle, serial));
  };
  compare(requests);
  auto without = requests;
  without.erase(without.begin() + 3);
  compare(without);
  // The absent rider returns with a different pickup under the same id.
  requests[3].pickup.x += 1.0;
  compare(requests);
  compare(requests);
}

// ---------------------------------------------------------------------------
// GC sweep: the size trigger must evict stale entries under sustained
// full-turnover churn instead of growing the map without bound.

TEST(GroupCacheTest, SizeTriggeredSweepEvictsStaleEntries) {
  obs::TraceSink sink;
  obs::Activation guard(sink);
  GroupOptions options;
  options.detour_threshold_km = 50.0;  // dense: every pair evaluated + stored
  options.max_group_size = 2;          // pairs only — the map still floods
  options.parallel = true;
  options.require_saving = false;
  options.pickup_radius_km = 1e6;  // finite, keeps the sparse path + persistence
  GroupCache cache;
  trace::RequestId next_id = 0;
  std::uint64_t total_evictions = 0;
  for (int frame = 0; frame < 16; ++frame) {
    // Full turnover: every frame is 128 brand-new ids => ~8128 fresh
    // entries per frame, so the map crosses the sweep floor (and then its
    // doubling trigger) well before frame counts where the periodic
    // sweep alone would have bounded it.
    auto requests = make_city_requests(128, 59 + frame, 40.0);
    for (auto& request : requests) request.id = next_id++;
    sink.begin_frame(static_cast<std::uint64_t>(frame), 0.0);
    enumerate_share_groups(requests, kOracle, options, 4, &cache);
    const obs::FrameTrace trace = sink.end_frame();
    total_evictions +=
        trace.counters[static_cast<std::size_t>(obs::Counter::kCacheEvictions)];
  }
  EXPECT_GT(cache.stats().evictions, 0u);
  EXPECT_EQ(cache.stats().evictions, total_evictions);
  // Live entries stay bounded near the churn window, far below the
  // ~130k stored across the run.
  EXPECT_LT(cache.size(), 50000u);
}

// ---------------------------------------------------------------------------
// Observability: the pipeline's counters reach the active sink.

TEST(ObsCounters, PipelineCountersReachTheActiveSink) {
  obs::TraceSink sink;
  obs::Activation guard(sink);
  const auto requests = make_city_requests(64, 37, 16.0);
  GroupOptions options;
  options.detour_threshold_km = 2.5;
  options.parallel = true;
  GroupCache cache;
  const auto counter = [](const obs::FrameTrace& frame, obs::Counter which) {
    return frame.counters[static_cast<std::size_t>(which)];
  };

  sink.begin_frame(0, 0.0);
  enumerate_share_groups(requests, kOracle, options, 4, &cache);
  const obs::FrameTrace cold = sink.end_frame();
  EXPECT_GT(counter(cold, obs::Counter::kConeRejects), 0u);
  EXPECT_GT(counter(cold, obs::Counter::kSimdBatches), 0u);
  EXPECT_GE(counter(cold, obs::Counter::kSimdBatchOccupancy),
            counter(cold, obs::Counter::kSimdBatches));
  EXPECT_GT(counter(cold, obs::Counter::kGroupCacheRevalidations), 0u);
  EXPECT_EQ(counter(cold, obs::Counter::kGroupCacheHits), 0u);

  sink.begin_frame(1, 60.0);
  enumerate_share_groups(requests, kOracle, options, 4, &cache);
  const obs::FrameTrace hot = sink.end_frame();
  EXPECT_GT(counter(hot, obs::Counter::kGroupCacheHits), 0u);
}

}  // namespace
}  // namespace o2o::packing

// ---------------------------------------------------------------------------
// Dispatch-level differential: a shared GroupCache across calls must
// leave the sharing dispatcher's matchings untouched.

namespace o2o::core {
namespace {

const geo::EuclideanOracle kDispatchOracle;

void expect_outcomes_equal(const SharingOutcome& a, const SharingOutcome& b) {
  EXPECT_EQ(a.feasible_groups, b.feasible_groups);
  EXPECT_EQ(a.packed_groups, b.packed_groups);
  EXPECT_EQ(a.unserved_request_indices, b.unserved_request_indices);
  ASSERT_EQ(a.assignments.size(), b.assignments.size());
  for (std::size_t i = 0; i < a.assignments.size(); ++i) {
    EXPECT_EQ(a.assignments[i].taxi_index, b.assignments[i].taxi_index);
    EXPECT_EQ(a.assignments[i].request_indices, b.assignments[i].request_indices);
    EXPECT_EQ(a.assignments[i].passenger_score, b.assignments[i].passenger_score);
    EXPECT_EQ(a.assignments[i].taxi_score, b.assignments[i].taxi_score);
  }
}

TEST(DispatchDifferential, GroupCacheLeavesMatchingsIdentical) {
  Rng rng(41);
  std::vector<trace::Request> requests;
  for (int i = 0; i < 30; ++i) {
    const geo::Point pickup{rng.uniform(0.0, 12.0), rng.uniform(0.0, 12.0)};
    requests.push_back(trace::Request{});
    requests.back().id = i;
    requests.back().pickup = pickup;
    requests.back().dropoff = {pickup.x + rng.uniform(-3.0, 3.0),
                               pickup.y + rng.uniform(-3.0, 3.0)};
    requests.back().seats = 1;
  }
  std::vector<trace::Taxi> taxis;
  for (int t = 0; t < 20; ++t) {
    taxis.push_back(trace::Taxi{});
    taxis.back().id = t;
    taxis.back().location = {rng.uniform(0.0, 12.0), rng.uniform(0.0, 12.0)};
    taxis.back().seats = 4;
  }

  SharingParams params;
  params.grouping.detour_threshold_km = 3.0;
  const SharingOutcome plain = dispatch_sharing(taxis, requests, kDispatchOracle, params);

  packing::GroupCache cache;
  const SharingOutcome cold =
      dispatch_sharing(taxis, requests, kDispatchOracle, params, nullptr, &cache);
  const SharingOutcome warm =
      dispatch_sharing(taxis, requests, kDispatchOracle, params, nullptr, &cache);
  expect_outcomes_equal(cold, plain);
  expect_outcomes_equal(warm, plain);
  EXPECT_GT(cache.stats().hits, 0u);
}

}  // namespace
}  // namespace o2o::core
