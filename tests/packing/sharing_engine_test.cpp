// Differential suite for the parallel grid-pruned sharing engine: the
// pruned ThreadPool path must reproduce the serial dense scan bit for
// bit, the bitset set-packing solvers must reproduce the legacy byte-map
// solvers (packing/reference.h), and the exact solver must dominate the
// approximations.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/sharing.h"
#include "packing/groups.h"
#include "packing/reference.h"
#include "packing/set_packing.h"
#include "util/rng.h"

namespace o2o::packing {
namespace {

const geo::EuclideanOracle kOracle;

trace::Request make_request(trace::RequestId id, geo::Point pickup, geo::Point dropoff,
                            int seats = 1) {
  trace::Request request;
  request.id = id;
  request.pickup = pickup;
  request.dropoff = dropoff;
  request.seats = seats;
  return request;
}

/// City-style frame: pick-ups over an `extent_km` square, trips 1-4 km.
std::vector<trace::Request> make_city_requests(int count, std::uint64_t seed,
                                               double extent_km) {
  Rng rng(seed);
  std::vector<trace::Request> requests;
  requests.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const geo::Point pickup{rng.uniform(0.0, extent_km), rng.uniform(0.0, extent_km)};
    const double angle = rng.uniform(0.0, 6.283185307179586);
    const double trip = rng.uniform(1.0, 4.0);
    const geo::Point dropoff{pickup.x + trip * std::cos(angle),
                             pickup.y + trip * std::sin(angle)};
    requests.push_back(make_request(i, pickup, dropoff, 1 + (i % 2)));
  }
  return requests;
}

void expect_routes_equal(const routing::Route& a, const routing::Route& b) {
  ASSERT_EQ(a.start.has_value(), b.start.has_value());
  if (a.start.has_value()) {
    EXPECT_EQ(a.start->x, b.start->x);
    EXPECT_EQ(a.start->y, b.start->y);
  }
  ASSERT_EQ(a.stops.size(), b.stops.size());
  for (std::size_t s = 0; s < a.stops.size(); ++s) {
    EXPECT_EQ(a.stops[s].request, b.stops[s].request);
    EXPECT_EQ(a.stops[s].is_pickup, b.stops[s].is_pickup);
    EXPECT_EQ(a.stops[s].point.x, b.stops[s].point.x);
    EXPECT_EQ(a.stops[s].point.y, b.stops[s].point.y);
  }
}

/// Bit-for-bit group equality: same members, same order, same doubles.
void expect_groups_equal(const std::vector<ShareGroup>& parallel,
                         const std::vector<ShareGroup>& serial) {
  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t g = 0; g < parallel.size(); ++g) {
    EXPECT_EQ(parallel[g].member_indices, serial[g].member_indices);
    EXPECT_EQ(parallel[g].pooled_length_km, serial[g].pooled_length_km);
    EXPECT_EQ(parallel[g].direct_sum_km, serial[g].direct_sum_km);
    EXPECT_EQ(parallel[g].max_detour_km, serial[g].max_detour_km);
    EXPECT_EQ(parallel[g].member_direct_km, serial[g].member_direct_km);
    expect_routes_equal(parallel[g].pooled_route, serial[g].pooled_route);
  }
}

void run_enumeration_differential(const std::vector<trace::Request>& requests,
                                  GroupOptions options) {
  options.parallel = true;
  const auto pruned = enumerate_share_groups(requests, kOracle, options);
  options.parallel = false;
  const auto serial = enumerate_share_groups(requests, kOracle, options);
  expect_groups_equal(pruned, serial);
}

TEST(EnumerationDifferential, DerivedRadiusOnlyMatchesSerialScan) {
  // Default options: infinite user radius, so only the θ-derived bound
  // prunes — the tentpole's calibrated default.
  for (const std::uint64_t seed : {11u, 12u, 13u}) {
    GroupOptions options;
    options.detour_threshold_km = 3.0;
    run_enumeration_differential(make_city_requests(48, seed, 18.0), options);
  }
}

TEST(EnumerationDifferential, UserRadiusAndDerivedBoundCompose) {
  GroupOptions options;
  options.detour_threshold_km = 4.0;
  options.pickup_radius_km = 2.5;
  run_enumeration_differential(make_city_requests(48, 21, 15.0), options);
}

TEST(EnumerationDifferential, NoSavingConstraintDisablesDerivedPruning) {
  // require_saving = false invalidates the θ-derivation (sequential
  // pooled routes become legal); the engine must fall back to the user
  // radius alone and still match the serial scan.
  GroupOptions options;
  options.detour_threshold_km = 2.0;
  options.require_saving = false;
  options.pickup_radius_km = 3.0;
  run_enumeration_differential(make_city_requests(40, 31, 12.0), options);
}

TEST(EnumerationDifferential, ExhaustiveTripleModeMatches) {
  GroupOptions options;
  options.detour_threshold_km = 3.0;
  options.grow_triples_from_pairs = false;
  run_enumeration_differential(make_city_requests(18, 41, 6.0), options);
}

TEST(EnumerationDifferential, PairsOnlyMatches) {
  GroupOptions options;
  options.detour_threshold_km = 3.0;
  options.max_group_size = 2;
  run_enumeration_differential(make_city_requests(48, 51, 14.0), options);
}

TEST(EnumerationDifferential, ZeroRequestFrame) {
  GroupOptions options;
  options.parallel = true;
  EXPECT_TRUE(enumerate_share_groups({}, kOracle, options).empty());
}

TEST(EnumerationDifferential, AllInfeasibleFrame) {
  // Trips radiating outward from distinct corners: nothing shares.
  std::vector<trace::Request> requests;
  for (int i = 0; i < 20; ++i) {
    const double base = 100.0 * static_cast<double>(i);
    requests.push_back(make_request(i, {base, 0.0}, {base + 2.0, 0.0}));
  }
  GroupOptions options;
  options.detour_threshold_km = 1.0;
  options.parallel = true;
  EXPECT_TRUE(enumerate_share_groups(requests, kOracle, options).empty());
  run_enumeration_differential(requests, options);
}

TEST(DerivedBound, FeasiblePairsRespectHalfThetaPlusDirect) {
  // The pruning derivation, checked on realized groups: a feasible
  // saving pair's pick-ups satisfy euclid <= θ/2 + max(direct_i, direct_j).
  const double theta = 3.0;
  GroupOptions options;
  options.detour_threshold_km = theta;
  options.max_group_size = 2;
  const auto requests = make_city_requests(64, 61, 16.0);
  for (const ShareGroup& group : enumerate_share_groups(requests, kOracle, options)) {
    const trace::Request& a = requests[group.member_indices[0]];
    const trace::Request& b = requests[group.member_indices[1]];
    const double bound =
        theta / 2.0 +
        std::max(group.member_direct_km[0], group.member_direct_km[1]) + 1e-6;
    EXPECT_LE(geo::euclidean_distance(a.pickup, b.pickup), bound);
  }
}

TEST(MemberDirects, CarryTheOracleDistances) {
  const auto requests = make_city_requests(24, 71, 8.0);
  GroupOptions options;
  options.detour_threshold_km = 4.0;
  for (const ShareGroup& group : enumerate_share_groups(requests, kOracle, options)) {
    ASSERT_EQ(group.member_direct_km.size(), group.member_indices.size());
    double sum = 0.0;
    for (std::size_t m = 0; m < group.member_indices.size(); ++m) {
      const trace::Request& rider = requests[group.member_indices[m]];
      EXPECT_EQ(group.member_direct_km[m], kOracle.distance(rider.pickup, rider.dropoff));
      sum += group.member_direct_km[m];
    }
    EXPECT_EQ(sum, group.direct_sum_km);
  }
}

// ---------------------------------------------------------------------------
// Set-packing solvers vs the preserved legacy implementations.

SetPackingProblem random_problem(std::uint64_t seed, std::size_t universe,
                                 std::size_t set_count, bool tie_free) {
  Rng rng(seed);
  SetPackingProblem problem;
  problem.universe_size = universe;
  for (std::size_t s = 0; s < set_count; ++s) {
    const std::size_t size = 2 + rng.uniform_index(2);  // 2 or 3 members
    std::vector<std::size_t> members;
    while (members.size() < size) {
      const std::size_t e = rng.uniform_index(universe);
      if (std::find(members.begin(), members.end(), e) == members.end()) {
        members.push_back(e);
      }
    }
    std::sort(members.begin(), members.end());
    problem.sets.push_back(std::move(members));
    if (tie_free) {
      // Distinct powers of two on top of a unit base: every subset has a
      // unique total weight, so the optimum support is unique and the
      // exact solvers must agree set-for-set, not just in weight.
      problem.weights.push_back(1.0 + std::ldexp(1.0, -static_cast<int>(s) - 2));
    } else if (seed % 2 == 0) {
      problem.weights.push_back(1.0 + static_cast<double>(rng.uniform_index(3)));
    }  // else unit weights (ties everywhere)
  }
  return problem;
}

TEST(SolverDifferential, GreedyMatchesReferenceExactly) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const auto problem = random_problem(seed, 30, 40, /*tie_free=*/false);
    EXPECT_EQ(solve_greedy(problem), reference::solve_greedy(problem));
  }
}

TEST(SolverDifferential, LocalSearchMatchesReferenceExactly) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const auto problem = random_problem(seed, 30, 40, /*tie_free=*/false);
    EXPECT_EQ(solve_local_search(problem), reference::solve_local_search(problem));
  }
}

TEST(SolverDifferential, ExactMatchesReferenceWeight) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto problem = random_problem(seed, 14, 16, /*tie_free=*/false);
    const double bitset_weight = packing_weight(problem, solve_exact(problem));
    const double legacy_weight = packing_weight(problem, reference::solve_exact(problem));
    EXPECT_NEAR(bitset_weight, legacy_weight, 1e-9);
  }
}

TEST(SolverDifferential, ExactMatchesReferencePackingOnTieFreeInstances) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto problem = random_problem(seed, 14, 16, /*tie_free=*/true);
    Packing legacy = reference::solve_exact(problem);
    std::sort(legacy.begin(), legacy.end());
    EXPECT_EQ(solve_exact(problem), legacy);  // new solver returns sorted
  }
}

TEST(SolverDifferential, EmptyAndAllConflictingInstances) {
  SetPackingProblem empty;
  EXPECT_TRUE(solve_exact(empty).empty());
  EXPECT_TRUE(solve_greedy(empty).empty());
  EXPECT_TRUE(solve_local_search(empty).empty());

  // Every set contains element 0: any packing holds at most one set.
  SetPackingProblem star;
  star.universe_size = 6;
  for (std::size_t s = 0; s < 5; ++s) star.sets.push_back({0, s + 1});
  EXPECT_EQ(solve_exact(star).size(), 1u);
  EXPECT_EQ(solve_greedy(star), reference::solve_greedy(star));
  EXPECT_EQ(solve_local_search(star), reference::solve_local_search(star));
}

TEST(SolverProperty, ExactGeqLocalSearchGeqGreedy) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto problem = random_problem(seed, 44, 44, /*tie_free=*/false);
    const double exact = packing_weight(problem, solve_exact(problem));
    const double local = packing_weight(problem, solve_local_search(problem));
    const double greedy = packing_weight(problem, solve_greedy(problem));
    EXPECT_GE(exact + 1e-9, local);
    EXPECT_GE(local + 1e-9, greedy);
  }
}

TEST(Exact, HandlesThousandsOfLocalizedSets) {
  // The practical regime the component decomposition unlocks: many sets,
  // each confined to a small neighbourhood of the universe (share groups
  // are spatially local), far past the old 30-set guard.
  Rng rng(91);
  SetPackingProblem problem;
  const std::size_t blocks = 1500;
  problem.universe_size = blocks * 4;
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t base = b * 4;
    for (int s = 0; s < 8; ++s) {
      std::size_t i = base + rng.uniform_index(4);
      std::size_t j = base + rng.uniform_index(4);
      while (j == i) j = base + rng.uniform_index(4);
      std::vector<std::size_t> members{std::min(i, j), std::max(i, j)};
      members.erase(std::unique(members.begin(), members.end()), members.end());
      if (members.size() == 2) problem.sets.push_back(std::move(members));
    }
  }
  ASSERT_GT(problem.sets.size(), 10'000u);
  const Packing exact = solve_exact(problem, /*max_sets=*/20'000);
  EXPECT_TRUE(is_valid_packing(problem, exact));
  EXPECT_GE(packing_weight(problem, exact) + 1e-9,
            packing_weight(problem, solve_local_search(problem)));
}

}  // namespace
}  // namespace o2o::packing

// ---------------------------------------------------------------------------
// Full Algorithm 3 differential: the parallel engine must leave the
// dispatcher's matchings untouched.

namespace o2o::core {
namespace {

const geo::EuclideanOracle kDispatchOracle;

trace::Taxi make_taxi(trace::TaxiId id, geo::Point location, int seats = 4) {
  trace::Taxi taxi;
  taxi.id = id;
  taxi.location = location;
  taxi.seats = seats;
  return taxi;
}

TEST(DispatchDifferential, ParallelGroupingKeepsMatchingsIdentical) {
  for (const std::uint64_t seed : {5u, 6u}) {
    Rng rng(seed);
    std::vector<trace::Request> requests;
    for (int i = 0; i < 30; ++i) {
      const geo::Point pickup{rng.uniform(0.0, 12.0), rng.uniform(0.0, 12.0)};
      requests.push_back(trace::Request{});
      requests.back().id = i;
      requests.back().pickup = pickup;
      requests.back().dropoff = {pickup.x + rng.uniform(-3.0, 3.0),
                                 pickup.y + rng.uniform(-3.0, 3.0)};
      requests.back().seats = 1;
    }
    std::vector<trace::Taxi> taxis;
    for (int t = 0; t < 20; ++t) {
      taxis.push_back(make_taxi(t, {rng.uniform(0.0, 12.0), rng.uniform(0.0, 12.0)}));
    }

    SharingParams params;
    params.grouping.detour_threshold_km = 3.0;
    params.grouping.parallel = true;
    const SharingOutcome parallel =
        dispatch_sharing(taxis, requests, kDispatchOracle, params);
    params.grouping.parallel = false;
    const SharingOutcome serial =
        dispatch_sharing(taxis, requests, kDispatchOracle, params);

    EXPECT_EQ(parallel.feasible_groups, serial.feasible_groups);
    EXPECT_EQ(parallel.packed_groups, serial.packed_groups);
    EXPECT_EQ(parallel.unserved_request_indices, serial.unserved_request_indices);
    ASSERT_EQ(parallel.assignments.size(), serial.assignments.size());
    for (std::size_t a = 0; a < parallel.assignments.size(); ++a) {
      EXPECT_EQ(parallel.assignments[a].taxi_index, serial.assignments[a].taxi_index);
      EXPECT_EQ(parallel.assignments[a].request_indices,
                serial.assignments[a].request_indices);
      EXPECT_EQ(parallel.assignments[a].passenger_score,
                serial.assignments[a].passenger_score);
      EXPECT_EQ(parallel.assignments[a].taxi_score, serial.assignments[a].taxi_score);
    }
  }
}

TEST(ExactFallback, OversizedFrameDegradesToLocalSearch) {
  // A corridor of overlapping trips: plenty of feasible groups.
  std::vector<trace::Request> requests;
  for (int i = 0; i < 12; ++i) {
    const double off = 0.1 * static_cast<double>(i);
    requests.push_back(trace::Request{});
    requests.back().id = i;
    requests.back().pickup = {off, 0.0};
    requests.back().dropoff = {off + 6.0, 0.0};
    requests.back().seats = 1;
  }
  SharingParams params;
  params.grouping.detour_threshold_km = 5.0;
  params.packing = PackingSolver::kExact;
  params.exact_max_sets = 1;  // force the degradation path
  const SharingUnits units = pack_requests(requests, kDispatchOracle, params);
  EXPECT_GT(units.feasible_groups, 1u);
  EXPECT_EQ(units.exact_fallbacks, 1u);
  EXPECT_GT(units.packed_groups, 0u);

  // And the dispatcher surfaces the counter.
  std::vector<trace::Taxi> taxis;
  for (int t = 0; t < 12; ++t) taxis.push_back(make_taxi(t, {0.5 * t, 1.0}));
  const SharingOutcome outcome = dispatch_sharing(taxis, requests, kDispatchOracle, params);
  EXPECT_EQ(outcome.exact_fallbacks, 1u);
}

TEST(UnitDirects, AlignWithSortedMembersAndMatchOracle) {
  Rng rng(77);
  std::vector<trace::Request> requests;
  for (int i = 0; i < 16; ++i) {
    const geo::Point pickup{rng.uniform(0.0, 6.0), rng.uniform(0.0, 6.0)};
    requests.push_back(trace::Request{});
    requests.back().id = i;
    requests.back().pickup = pickup;
    requests.back().dropoff = {pickup.x + rng.uniform(1.0, 3.0),
                               pickup.y + rng.uniform(1.0, 3.0)};
    requests.back().seats = 1;
  }
  SharingParams params;
  params.grouping.detour_threshold_km = 4.0;
  const SharingUnits units = pack_requests(requests, kDispatchOracle, params);
  ASSERT_EQ(units.unit_direct_km.size(), units.units.size());
  for (std::size_t u = 0; u < units.units.size(); ++u) {
    ASSERT_EQ(units.unit_direct_km[u].size(), units.units[u].size());
    for (std::size_t m = 0; m < units.units[u].size(); ++m) {
      const trace::Request& rider = requests[units.units[u][m]];
      EXPECT_EQ(units.unit_direct_km[u][m],
                kDispatchOracle.distance(rider.pickup, rider.dropoff));
    }
  }
}

}  // namespace
}  // namespace o2o::core
