#include "packing/groups.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/rng.h"

namespace o2o::packing {
namespace {

const geo::EuclideanOracle kOracle;

trace::Request make_request(trace::RequestId id, geo::Point pickup, geo::Point dropoff,
                            int seats = 1) {
  trace::Request request;
  request.id = id;
  request.pickup = pickup;
  request.dropoff = dropoff;
  request.seats = seats;
  return request;
}

GroupOptions options(double theta) {
  GroupOptions opts;
  opts.detour_threshold_km = theta;
  return opts;
}

TEST(EvaluateGroup, IdenticalTripsHaveZeroDetour) {
  const std::vector<trace::Request> requests{make_request(0, {0, 0}, {5, 0}),
                                             make_request(1, {0, 0}, {5, 0})};
  bool feasible = false;
  const ShareGroup group =
      evaluate_group(requests, {0, 1}, kOracle, options(0.1), 4, feasible);
  EXPECT_TRUE(feasible);
  EXPECT_NEAR(group.max_detour_km, 0.0, 1e-9);
  EXPECT_NEAR(group.pooled_length_km, 5.0, 1e-9);
  EXPECT_NEAR(group.direct_sum_km, 10.0, 1e-9);
}

TEST(EvaluateGroup, OppositeTripsAreInfeasibleUnderTightTheta) {
  const std::vector<trace::Request> requests{make_request(0, {0, 0}, {10, 0}),
                                             make_request(1, {10, 5}, {0, 5})};
  bool feasible = true;
  evaluate_group(requests, {0, 1}, kOracle, options(0.5), 4, feasible);
  EXPECT_FALSE(feasible);
}

TEST(EvaluateGroup, SeatDemandCanExceedCapacity) {
  const std::vector<trace::Request> requests{make_request(0, {0, 0}, {5, 0}, 3),
                                             make_request(1, {0, 0}, {5, 0}, 3)};
  bool feasible = true;
  evaluate_group(requests, {0, 1}, kOracle, options(5.0), 4, feasible);
  EXPECT_FALSE(feasible);  // 6 seats > 4
}

TEST(Enumerate, FindsTheObviousPair) {
  const std::vector<trace::Request> requests{
      make_request(0, {0, 0}, {5, 0}), make_request(1, {0.2, 0}, {5.2, 0}),
      make_request(2, {50, 50}, {60, 60})};  // far away, shares with no one
  const auto groups = enumerate_share_groups(requests, kOracle, options(1.0));
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].member_indices, (std::vector<std::size_t>{0, 1}));
}

TEST(Enumerate, TriplesRequireAllMembersCompatible) {
  const std::vector<trace::Request> requests{make_request(0, {0, 0}, {5, 0}),
                                             make_request(1, {0.1, 0}, {5.1, 0}),
                                             make_request(2, {0.2, 0}, {5.2, 0})};
  const auto groups = enumerate_share_groups(requests, kOracle, options(1.0));
  // 3 pairs + 1 triple.
  EXPECT_EQ(groups.size(), 4u);
  const auto triple = std::find_if(groups.begin(), groups.end(), [](const ShareGroup& g) {
    return g.member_indices.size() == 3;
  });
  EXPECT_NE(triple, groups.end());
}

TEST(Enumerate, MaxGroupSizeTwoSkipsTriples) {
  const std::vector<trace::Request> requests{make_request(0, {0, 0}, {5, 0}),
                                             make_request(1, {0.1, 0}, {5.1, 0}),
                                             make_request(2, {0.2, 0}, {5.2, 0})};
  GroupOptions opts = options(1.0);
  opts.max_group_size = 2;
  const auto groups = enumerate_share_groups(requests, kOracle, opts);
  EXPECT_EQ(groups.size(), 3u);
  for (const ShareGroup& group : groups) EXPECT_EQ(group.member_indices.size(), 2u);
}

TEST(Enumerate, PickupRadiusPrefilterDropsDistantPairs) {
  const std::vector<trace::Request> requests{make_request(0, {0, 0}, {30, 0}),
                                             make_request(1, {20, 0}, {30, 0})};
  GroupOptions generous = options(100.0);
  EXPECT_EQ(enumerate_share_groups(requests, kOracle, generous).size(), 1u);
  generous.pickup_radius_km = 5.0;
  EXPECT_TRUE(enumerate_share_groups(requests, kOracle, generous).empty());
}

TEST(Enumerate, PairPruningMatchesExhaustiveOnCompactClusters) {
  // When all riders sit in one compact cluster, triple feasibility implies
  // pair feasibility, so pruned and exhaustive enumeration agree.
  Rng rng(51);
  std::vector<trace::Request> requests;
  for (int i = 0; i < 7; ++i) {
    const geo::Point pickup{rng.uniform(0, 1.5), rng.uniform(0, 1.5)};
    const geo::Point dropoff{10.0 + rng.uniform(0, 1.5), rng.uniform(0, 1.5)};
    requests.push_back(make_request(i, pickup, dropoff));
  }
  GroupOptions pruned = options(4.0);
  GroupOptions exhaustive = options(4.0);
  exhaustive.grow_triples_from_pairs = false;
  const auto a = enumerate_share_groups(requests, kOracle, pruned);
  const auto b = enumerate_share_groups(requests, kOracle, exhaustive);
  EXPECT_EQ(a.size(), b.size());
}

TEST(Enumerate, EmptyAndSingletonInputs) {
  EXPECT_TRUE(enumerate_share_groups({}, kOracle, options(1.0)).empty());
  const std::vector<trace::Request> one{make_request(0, {0, 0}, {1, 0})};
  EXPECT_TRUE(enumerate_share_groups(one, kOracle, options(1.0)).empty());
}

TEST(Enumerate, GroupRecordsConsistentDetours) {
  Rng rng(52);
  std::vector<trace::Request> requests;
  for (int i = 0; i < 8; ++i) {
    requests.push_back(make_request(i, {rng.uniform(0, 3), rng.uniform(0, 3)},
                                    {rng.uniform(5, 9), rng.uniform(5, 9)}));
  }
  const auto groups = enumerate_share_groups(requests, kOracle, options(2.0));
  for (const ShareGroup& group : groups) {
    EXPECT_LE(group.max_detour_km, 2.0 + 1e-9);
    EXPECT_GE(group.max_detour_km, -1e-9);
    // Pooling can't be shorter than the longest single direct trip.
    double longest_direct = 0.0;
    for (std::size_t index : group.member_indices) {
      longest_direct = std::max(longest_direct,
                                kOracle.distance(requests[index].pickup,
                                                 requests[index].dropoff));
    }
    EXPECT_GE(group.pooled_length_km + 1e-9, longest_direct);
  }
}

}  // namespace
}  // namespace o2o::packing
