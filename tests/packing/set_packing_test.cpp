#include "packing/set_packing.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/contracts.h"
#include "util/rng.h"

namespace o2o::packing {
namespace {

SetPackingProblem make_problem(std::size_t universe,
                               std::vector<std::vector<std::size_t>> sets,
                               std::vector<double> weights = {}) {
  SetPackingProblem problem;
  problem.universe_size = universe;
  problem.sets = std::move(sets);
  problem.weights = std::move(weights);
  return problem;
}

/// Exhaustive optimum over all subsets of sets (reference, <= 20 sets).
double exhaustive_optimum(const SetPackingProblem& problem) {
  const std::size_t n = problem.sets.size();
  double best = 0.0;
  for (std::size_t mask = 0; mask < (std::size_t{1} << n); ++mask) {
    Packing packing;
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (std::size_t{1} << i)) packing.push_back(i);
    }
    if (is_valid_packing(problem, packing)) {
      best = std::max(best, packing_weight(problem, packing));
    }
  }
  return best;
}

TEST(Validity, DisjointSetsAreValid) {
  const auto problem = make_problem(6, {{0, 1}, {2, 3}, {4, 5}});
  EXPECT_TRUE(is_valid_packing(problem, {0, 1, 2}));
}

TEST(Validity, OverlapIsRejected) {
  const auto problem = make_problem(4, {{0, 1}, {1, 2}});
  EXPECT_FALSE(is_valid_packing(problem, {0, 1}));
}

TEST(Validity, BadIndicesAreRejected) {
  const auto problem = make_problem(4, {{0, 1}});
  EXPECT_FALSE(is_valid_packing(problem, {5}));
}

TEST(Weight, UnitAndExplicitWeights) {
  const auto unit = make_problem(4, {{0}, {1}, {2}});
  EXPECT_DOUBLE_EQ(packing_weight(unit, {0, 2}), 2.0);
  const auto weighted = make_problem(4, {{0}, {1}}, {2.5, 4.0});
  EXPECT_DOUBLE_EQ(packing_weight(weighted, {0, 1}), 6.5);
}

TEST(Exact, ClassicTriangleInstance) {
  // Sets {0,1}, {1,2}, {2,0}: any two overlap, optimum is 1.
  const auto problem = make_problem(3, {{0, 1}, {1, 2}, {0, 2}});
  const Packing packing = solve_exact(problem);
  EXPECT_EQ(packing.size(), 1u);
}

TEST(Exact, PicksWeightOverCount) {
  // One big set worth 10 vs two disjoint sets worth 4 each.
  const auto problem = make_problem(4, {{0, 1, 2, 3}, {0, 1}, {2, 3}}, {10.0, 4.0, 4.0});
  const Packing packing = solve_exact(problem);
  EXPECT_DOUBLE_EQ(packing_weight(problem, packing), 10.0);
}

TEST(Exact, EmptyProblem) {
  const auto problem = make_problem(0, {});
  EXPECT_TRUE(solve_exact(problem).empty());
}

TEST(Exact, SizeGuard) {
  SetPackingProblem problem = make_problem(2, {});
  for (int i = 0; i < 40; ++i) problem.sets.push_back({0});
  EXPECT_THROW(solve_exact(problem, 26), o2o::ContractViolation);
}

TEST(Greedy, ProducesMaximalPacking) {
  const auto problem = make_problem(6, {{0, 1}, {1, 2}, {2, 3}, {4, 5}});
  const Packing packing = solve_greedy(problem);
  EXPECT_TRUE(is_valid_packing(problem, packing));
  // Maximal: every unchosen set conflicts with the packing.
  std::vector<bool> used(problem.universe_size, false);
  for (std::size_t s : packing) {
    for (std::size_t e : problem.sets[s]) used[e] = true;
  }
  for (std::size_t s = 0; s < problem.sets.size(); ++s) {
    if (std::find(packing.begin(), packing.end(), s) != packing.end()) continue;
    bool conflicts = false;
    for (std::size_t e : problem.sets[s]) conflicts |= used[e];
    EXPECT_TRUE(conflicts);
  }
}

TEST(Greedy, CanBeSuboptimal_LocalSearchFixesIt) {
  // Weighted trap: greedy takes the heavy middle set {1,2} (weight 3) and
  // blocks {0,1} + {2,3} (weight 2 + 2 = 4). Local search swaps 2-for-1.
  const auto problem = make_problem(4, {{1, 2}, {0, 1}, {2, 3}}, {3.0, 2.0, 2.0});
  const Packing greedy = solve_greedy(problem);
  EXPECT_DOUBLE_EQ(packing_weight(problem, greedy), 3.0);
  const Packing improved = solve_local_search(problem);
  EXPECT_DOUBLE_EQ(packing_weight(problem, improved), 4.0);
}

TEST(LocalSearch, NeverWorseThanGreedy) {
  Rng rng(61);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t universe = 6 + rng.uniform_index(8);
    SetPackingProblem problem;
    problem.universe_size = universe;
    const std::size_t set_count = 3 + rng.uniform_index(12);
    for (std::size_t s = 0; s < set_count; ++s) {
      std::vector<std::size_t> members;
      const std::size_t size = 2 + rng.uniform_index(2);  // 2 or 3, the paper's regime
      while (members.size() < size) {
        const std::size_t e = rng.uniform_index(universe);
        if (std::find(members.begin(), members.end(), e) == members.end()) {
          members.push_back(e);
        }
      }
      std::sort(members.begin(), members.end());
      problem.sets.push_back(std::move(members));
    }
    const double greedy = packing_weight(problem, solve_greedy(problem));
    const double local = packing_weight(problem, solve_local_search(problem));
    EXPECT_GE(local + 1e-9, greedy) << "trial " << trial;
  }
}

class PackingVsExhaustive : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PackingVsExhaustive, ExactIsOptimalAndLocalSearchWithinRatio) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 15; ++trial) {
    const std::size_t universe = 5 + rng.uniform_index(6);
    SetPackingProblem problem;
    problem.universe_size = universe;
    const std::size_t set_count = 2 + rng.uniform_index(10);
    for (std::size_t s = 0; s < set_count; ++s) {
      std::vector<std::size_t> members;
      const std::size_t size = 2 + rng.uniform_index(2);
      while (members.size() < size) {
        const std::size_t e = rng.uniform_index(universe);
        if (std::find(members.begin(), members.end(), e) == members.end()) {
          members.push_back(e);
        }
      }
      std::sort(members.begin(), members.end());
      problem.sets.push_back(std::move(members));
    }
    const double optimum = exhaustive_optimum(problem);
    const Packing exact = solve_exact(problem);
    EXPECT_TRUE(is_valid_packing(problem, exact));
    EXPECT_DOUBLE_EQ(packing_weight(problem, exact), optimum) << "trial " << trial;

    // The paper's approximation guarantee: ratio (max|c_k|+2)/3 = 5/3 for
    // |c_k| <= 3 -- i.e. local >= 3/5 * optimum (unit weights here).
    const Packing local = solve_local_search(problem);
    EXPECT_TRUE(is_valid_packing(problem, local));
    EXPECT_GE(packing_weight(problem, local) + 1e-9, optimum * 3.0 / 5.0)
        << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PackingVsExhaustive, ::testing::Values(71, 72, 73, 74, 75));

TEST(Problem, ValidationCatchesUnsortedSets) {
  auto problem = make_problem(4, {{2, 0}});
  EXPECT_THROW(solve_greedy(problem), o2o::ContractViolation);
}

TEST(Problem, ValidationCatchesOutOfUniverseElements) {
  auto problem = make_problem(2, {{0, 5}});
  EXPECT_THROW(solve_greedy(problem), o2o::ContractViolation);
}

}  // namespace
}  // namespace o2o::packing
