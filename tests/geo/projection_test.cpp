#include "geo/projection.h"

#include <gtest/gtest.h>

#include <cmath>

namespace o2o::geo {
namespace {

constexpr LatLon kNewYork{40.75, -73.98};

TEST(Projection, ReferenceMapsToOrigin) {
  const Projection projection(kNewYork);
  const Point origin = projection.to_plane(kNewYork);
  EXPECT_NEAR(origin.x, 0.0, 1e-12);
  EXPECT_NEAR(origin.y, 0.0, 1e-12);
}

TEST(Projection, OneDegreeLatitudeIsAbout111Km) {
  const Projection projection(kNewYork);
  const Point p = projection.to_plane({kNewYork.lat + 1.0, kNewYork.lon});
  EXPECT_NEAR(p.y, 111.19, 0.1);
  EXPECT_NEAR(p.x, 0.0, 1e-9);
}

TEST(Projection, LongitudeShrinksWithLatitude) {
  const Projection at_equator(LatLon{0.0, 0.0});
  const Projection at_60n(LatLon{60.0, 0.0});
  const double equator_km = at_equator.to_plane({0.0, 1.0}).x;
  const double north_km = at_60n.to_plane({60.0, 1.0}).x;
  EXPECT_NEAR(north_km / equator_km, std::cos(60.0 * 3.14159265358979 / 180.0), 1e-6);
}

TEST(Projection, RoundTripIsExact) {
  const Projection projection(kNewYork);
  const LatLon original{40.7, -74.1};
  const LatLon back = projection.to_latlon(projection.to_plane(original));
  EXPECT_NEAR(back.lat, original.lat, 1e-12);
  EXPECT_NEAR(back.lon, original.lon, 1e-12);
}

TEST(Projection, NorthAndEastArePositive) {
  const Projection projection(kNewYork);
  const Point ne = projection.to_plane({kNewYork.lat + 0.1, kNewYork.lon + 0.1});
  EXPECT_GT(ne.x, 0.0);
  EXPECT_GT(ne.y, 0.0);
  const Point sw = projection.to_plane({kNewYork.lat - 0.1, kNewYork.lon - 0.1});
  EXPECT_LT(sw.x, 0.0);
  EXPECT_LT(sw.y, 0.0);
}

TEST(Projection, ManhattanToJfkIsRoughly20Km) {
  // Times Square (40.758, -73.985) to JFK (40.641, -73.778).
  const Projection projection(kNewYork);
  const Point a = projection.to_plane({40.758, -73.985});
  const Point b = projection.to_plane({40.641, -73.778});
  const double km = euclidean_distance(a, b);
  EXPECT_GT(km, 18.0);
  EXPECT_LT(km, 25.0);
}

}  // namespace
}  // namespace o2o::geo
