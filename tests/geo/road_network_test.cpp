#include "geo/road_network.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/contracts.h"
#include "util/rng.h"

namespace o2o::geo {
namespace {

/// A 2x2 square city:   2 -- 3
///                      |    |
///                      0 -- 1
RoadNetwork square_city() {
  RoadNetwork network;
  network.add_node({0, 0});
  network.add_node({1, 0});
  network.add_node({0, 1});
  network.add_node({1, 1});
  network.add_bidirectional_edge(0, 1);
  network.add_bidirectional_edge(0, 2);
  network.add_bidirectional_edge(1, 3);
  network.add_bidirectional_edge(2, 3);
  return network;
}

TEST(RoadNetwork, CountsNodesAndEdges) {
  const RoadNetwork network = square_city();
  EXPECT_EQ(network.node_count(), 4u);
  EXPECT_EQ(network.edge_count(), 8u);  // 4 streets, both directions
}

TEST(RoadNetwork, DefaultEdgeLengthIsEuclidean) {
  RoadNetwork network;
  network.add_node({0, 0});
  network.add_node({3, 4});
  network.add_edge(0, 1);
  EXPECT_DOUBLE_EQ(network.edges_from(0)[0].length_km, 5.0);
}

TEST(RoadNetwork, ExplicitEdgeLengthIsKept) {
  RoadNetwork network;
  network.add_node({0, 0});
  network.add_node({1, 0});
  network.add_edge(0, 1, 2.5);
  EXPECT_DOUBLE_EQ(network.edges_from(0)[0].length_km, 2.5);
}

TEST(RoadNetwork, DijkstraOnTheSquare) {
  const RoadNetwork network = square_city();
  const auto dist = network.shortest_paths_from(0);
  EXPECT_DOUBLE_EQ(dist[0], 0.0);
  EXPECT_DOUBLE_EQ(dist[1], 1.0);
  EXPECT_DOUBLE_EQ(dist[2], 1.0);
  EXPECT_DOUBLE_EQ(dist[3], 2.0);  // around the corner
}

TEST(RoadNetwork, UnreachableNodeIsInfinity) {
  RoadNetwork network;
  network.add_node({0, 0});
  network.add_node({5, 5});
  EXPECT_EQ(network.shortest_path(0, 1), kInfiniteDistance);
}

TEST(RoadNetwork, OneWayEdgesAreDirected) {
  RoadNetwork network;
  network.add_node({0, 0});
  network.add_node({1, 0});
  network.add_edge(0, 1);
  EXPECT_DOUBLE_EQ(network.shortest_path(0, 1), 1.0);
  EXPECT_EQ(network.shortest_path(1, 0), kInfiniteDistance);
}

TEST(RoadNetwork, ShortestPathNodesTracesAValidPath) {
  const RoadNetwork network = square_city();
  const auto path = network.shortest_path_nodes(0, 3);
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path.front(), 0);
  EXPECT_EQ(path.back(), 3);
  // Consecutive nodes must be connected.
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    bool connected = false;
    for (const auto& edge : network.edges_from(path[i])) {
      connected |= (edge.to == path[i + 1]);
    }
    EXPECT_TRUE(connected);
  }
}

TEST(RoadNetwork, ShortestPathNodesEmptyWhenUnreachable) {
  RoadNetwork network;
  network.add_node({0, 0});
  network.add_node({9, 9});
  EXPECT_TRUE(network.shortest_path_nodes(0, 1).empty());
}

TEST(RoadNetwork, NearestNodeMatchesLinearScan) {
  RoadNetwork network = RoadNetwork::make_grid_city(8, 6, 1.0, 0.2, 0.0, 3);
  Rng rng(17);
  for (int i = 0; i < 200; ++i) {
    const Point p{rng.uniform(-1.0, 8.0), rng.uniform(-1.0, 6.0)};
    const NodeId fast = network.nearest_node(p);
    NodeId slow = 0;
    double best = squared_distance(p, network.node_position(0));
    for (NodeId id = 1; id < static_cast<NodeId>(network.node_count()); ++id) {
      const double d = squared_distance(p, network.node_position(id));
      if (d < best) {
        best = d;
        slow = id;
      }
    }
    EXPECT_DOUBLE_EQ(squared_distance(p, network.node_position(fast)), best) << "point " << i;
    (void)slow;
  }
}

TEST(GridCity, HasExpectedShape) {
  const RoadNetwork city = RoadNetwork::make_grid_city(5, 4, 0.5);
  EXPECT_EQ(city.node_count(), 20u);
  // Full grid: 4*4 horizontal + 5*3 vertical streets, two directions each.
  EXPECT_EQ(city.edge_count(), 2u * (4 * 4 + 5 * 3));
}

TEST(GridCity, StaysConnectedUnderClosures) {
  const RoadNetwork city = RoadNetwork::make_grid_city(6, 6, 1.0, 0.0, 0.4, 11);
  const auto dist = city.shortest_paths_from(0);
  for (double d : dist) EXPECT_LT(d, kInfiniteDistance);
}

TEST(GridCity, JitterKeepsNodesNearLattice) {
  const RoadNetwork city = RoadNetwork::make_grid_city(4, 4, 2.0, 0.3, 0.0, 5);
  for (NodeId id = 0; id < static_cast<NodeId>(city.node_count()); ++id) {
    const Point p = city.node_position(id);
    const double lattice_x = 2.0 * (id % 4);
    const double lattice_y = 2.0 * (id / 4);
    EXPECT_LE(std::abs(p.x - lattice_x), 0.3 + 1e-12);
    EXPECT_LE(std::abs(p.y - lattice_y), 0.3 + 1e-12);
  }
}

TEST(NetworkOracle, GridDistanceIsRectilinear) {
  const RoadNetwork city = RoadNetwork::make_grid_city(10, 10, 1.0);
  const NetworkOracle oracle(city);
  // Node-aligned queries: the shortest path follows the grid.
  EXPECT_NEAR(oracle.distance({0, 0}, {3, 4}), 7.0, 1e-9);
  EXPECT_NEAR(oracle.distance({2, 2}, {2, 2}), 0.0, 1e-9);
}

TEST(NetworkOracle, AtLeastEuclidean) {
  const RoadNetwork city = RoadNetwork::make_grid_city(10, 10, 1.0, 0.0, 0.2, 7);
  const NetworkOracle oracle(city);
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    const Point a{rng.uniform(0, 9), rng.uniform(0, 9)};
    const Point b{rng.uniform(0, 9), rng.uniform(0, 9)};
    EXPECT_GE(oracle.distance(a, b) + 1e-9, euclidean_distance(a, b));
  }
}

TEST(NetworkOracle, SymmetricOnBidirectionalStreets) {
  const RoadNetwork city = RoadNetwork::make_grid_city(6, 6, 1.0, 0.1, 0.0, 9);
  const NetworkOracle oracle(city);
  Rng rng(29);
  for (int i = 0; i < 50; ++i) {
    const Point a{rng.uniform(0, 5), rng.uniform(0, 5)};
    const Point b{rng.uniform(0, 5), rng.uniform(0, 5)};
    EXPECT_NEAR(oracle.distance(a, b), oracle.distance(b, a), 1e-9);
  }
}

TEST(NetworkOracle, CacheIsBounded) {
  const RoadNetwork city = RoadNetwork::make_grid_city(12, 12, 1.0);
  const NetworkOracle oracle(city, /*cache_capacity=*/16);
  Rng rng(31);
  for (int i = 0; i < 500; ++i) {
    const Point a{rng.uniform(0, 11), rng.uniform(0, 11)};
    const Point b{rng.uniform(0, 11), rng.uniform(0, 11)};
    (void)oracle.distance(a, b);
  }
  EXPECT_LE(oracle.cache_size(), 16u);
}

}  // namespace
}  // namespace o2o::geo
