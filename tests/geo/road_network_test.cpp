#include "geo/road_network.h"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "util/contracts.h"
#include "util/rng.h"

namespace o2o::geo {
namespace {

/// A 2x2 square city:   2 -- 3
///                      |    |
///                      0 -- 1
RoadNetwork square_city() {
  RoadNetwork network;
  network.add_node({0, 0});
  network.add_node({1, 0});
  network.add_node({0, 1});
  network.add_node({1, 1});
  network.add_bidirectional_edge(0, 1);
  network.add_bidirectional_edge(0, 2);
  network.add_bidirectional_edge(1, 3);
  network.add_bidirectional_edge(2, 3);
  return network;
}

TEST(RoadNetwork, CountsNodesAndEdges) {
  const RoadNetwork network = square_city();
  EXPECT_EQ(network.node_count(), 4u);
  EXPECT_EQ(network.edge_count(), 8u);  // 4 streets, both directions
}

TEST(RoadNetwork, DefaultEdgeLengthIsEuclidean) {
  RoadNetwork network;
  network.add_node({0, 0});
  network.add_node({3, 4});
  network.add_edge(0, 1);
  EXPECT_DOUBLE_EQ(network.edges_from(0)[0].length_km, 5.0);
}

TEST(RoadNetwork, ExplicitEdgeLengthIsKept) {
  RoadNetwork network;
  network.add_node({0, 0});
  network.add_node({1, 0});
  network.add_edge(0, 1, 2.5);
  EXPECT_DOUBLE_EQ(network.edges_from(0)[0].length_km, 2.5);
}

TEST(RoadNetwork, DijkstraOnTheSquare) {
  const RoadNetwork network = square_city();
  const auto dist = network.shortest_paths_from(0);
  EXPECT_DOUBLE_EQ(dist[0], 0.0);
  EXPECT_DOUBLE_EQ(dist[1], 1.0);
  EXPECT_DOUBLE_EQ(dist[2], 1.0);
  EXPECT_DOUBLE_EQ(dist[3], 2.0);  // around the corner
}

TEST(RoadNetwork, UnreachableNodeIsInfinity) {
  RoadNetwork network;
  network.add_node({0, 0});
  network.add_node({5, 5});
  EXPECT_EQ(network.shortest_path(0, 1), kInfiniteDistance);
}

TEST(RoadNetwork, OneWayEdgesAreDirected) {
  RoadNetwork network;
  network.add_node({0, 0});
  network.add_node({1, 0});
  network.add_edge(0, 1);
  EXPECT_DOUBLE_EQ(network.shortest_path(0, 1), 1.0);
  EXPECT_EQ(network.shortest_path(1, 0), kInfiniteDistance);
}

TEST(RoadNetwork, ShortestPathNodesTracesAValidPath) {
  const RoadNetwork network = square_city();
  const auto path = network.shortest_path_nodes(0, 3);
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path.front(), 0);
  EXPECT_EQ(path.back(), 3);
  // Consecutive nodes must be connected.
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    bool connected = false;
    for (const auto& edge : network.edges_from(path[i])) {
      connected |= (edge.to == path[i + 1]);
    }
    EXPECT_TRUE(connected);
  }
}

TEST(RoadNetwork, ShortestPathNodesEmptyWhenUnreachable) {
  RoadNetwork network;
  network.add_node({0, 0});
  network.add_node({9, 9});
  EXPECT_TRUE(network.shortest_path_nodes(0, 1).empty());
}

TEST(RoadNetwork, NearestNodeMatchesLinearScan) {
  RoadNetwork network = RoadNetwork::make_grid_city(8, 6, 1.0, 0.2, 0.0, 3);
  Rng rng(17);
  for (int i = 0; i < 200; ++i) {
    const Point p{rng.uniform(-1.0, 8.0), rng.uniform(-1.0, 6.0)};
    const NodeId fast = network.nearest_node(p);
    NodeId slow = 0;
    double best = squared_distance(p, network.node_position(0));
    for (NodeId id = 1; id < static_cast<NodeId>(network.node_count()); ++id) {
      const double d = squared_distance(p, network.node_position(id));
      if (d < best) {
        best = d;
        slow = id;
      }
    }
    EXPECT_DOUBLE_EQ(squared_distance(p, network.node_position(fast)), best) << "point " << i;
    (void)slow;
  }
}

TEST(GridCity, HasExpectedShape) {
  const RoadNetwork city = RoadNetwork::make_grid_city(5, 4, 0.5);
  EXPECT_EQ(city.node_count(), 20u);
  // Full grid: 4*4 horizontal + 5*3 vertical streets, two directions each.
  EXPECT_EQ(city.edge_count(), 2u * (4 * 4 + 5 * 3));
}

TEST(GridCity, StaysConnectedUnderClosures) {
  const RoadNetwork city = RoadNetwork::make_grid_city(6, 6, 1.0, 0.0, 0.4, 11);
  const auto dist = city.shortest_paths_from(0);
  for (double d : dist) EXPECT_LT(d, kInfiniteDistance);
}

TEST(GridCity, JitterKeepsNodesNearLattice) {
  const RoadNetwork city = RoadNetwork::make_grid_city(4, 4, 2.0, 0.3, 0.0, 5);
  for (NodeId id = 0; id < static_cast<NodeId>(city.node_count()); ++id) {
    const Point p = city.node_position(id);
    const double lattice_x = 2.0 * (id % 4);
    const double lattice_y = 2.0 * (id / 4);
    EXPECT_LE(std::abs(p.x - lattice_x), 0.3 + 1e-12);
    EXPECT_LE(std::abs(p.y - lattice_y), 0.3 + 1e-12);
  }
}

TEST(NetworkOracle, GridDistanceIsRectilinear) {
  const RoadNetwork city = RoadNetwork::make_grid_city(10, 10, 1.0);
  const NetworkOracle oracle(city);
  // Node-aligned queries: the shortest path follows the grid.
  EXPECT_NEAR(oracle.distance({0, 0}, {3, 4}), 7.0, 1e-9);
  EXPECT_NEAR(oracle.distance({2, 2}, {2, 2}), 0.0, 1e-9);
}

TEST(NetworkOracle, AtLeastEuclidean) {
  const RoadNetwork city = RoadNetwork::make_grid_city(10, 10, 1.0, 0.0, 0.2, 7);
  const NetworkOracle oracle(city);
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    const Point a{rng.uniform(0, 9), rng.uniform(0, 9)};
    const Point b{rng.uniform(0, 9), rng.uniform(0, 9)};
    EXPECT_GE(oracle.distance(a, b) + 1e-9, euclidean_distance(a, b));
  }
}

TEST(NetworkOracle, SymmetricOnBidirectionalStreets) {
  const RoadNetwork city = RoadNetwork::make_grid_city(6, 6, 1.0, 0.1, 0.0, 9);
  const NetworkOracle oracle(city);
  Rng rng(29);
  for (int i = 0; i < 50; ++i) {
    const Point a{rng.uniform(0, 5), rng.uniform(0, 5)};
    const Point b{rng.uniform(0, 5), rng.uniform(0, 5)};
    EXPECT_NEAR(oracle.distance(a, b), oracle.distance(b, a), 1e-9);
  }
}

TEST(NetworkOracle, CacheIsBounded) {
  const RoadNetwork city = RoadNetwork::make_grid_city(12, 12, 1.0);
  const NetworkOracle oracle(city, /*cache_capacity=*/16);
  Rng rng(31);
  for (int i = 0; i < 500; ++i) {
    const Point a{rng.uniform(0, 11), rng.uniform(0, 11)};
    const Point b{rng.uniform(0, 11), rng.uniform(0, 11)};
    (void)oracle.distance(a, b);
  }
  EXPECT_LE(oracle.cache_size(), 16u);
}

TEST(NetworkOracle, EvictsLeastRecentlyUsedTree) {
  // Single shard with room for two trees so the eviction order is fully
  // observable: a touched entry must survive, the stale one must go.
  const RoadNetwork city = RoadNetwork::make_grid_city(4, 4, 1.0);
  const NetworkOracle oracle(city, /*cache_capacity=*/2, /*shard_count=*/1);
  ASSERT_EQ(oracle.cache_capacity(), 2u);
  const Point far{3, 3};  // node 15, distinct from every source below

  (void)oracle.distance({0, 0}, far);  // tree at node 0
  (void)oracle.distance({1, 0}, far);  // tree at node 1
  EXPECT_TRUE(oracle.tree_cached(0));
  EXPECT_TRUE(oracle.tree_cached(1));
  EXPECT_EQ(oracle.cache_size(), 2u);

  (void)oracle.distance({0, 0}, far);  // touch node 0: now MRU
  (void)oracle.distance({2, 0}, far);  // tree at node 2 evicts the LRU
  EXPECT_TRUE(oracle.tree_cached(0)) << "touched tree must survive";
  EXPECT_FALSE(oracle.tree_cached(1)) << "least recently used tree must be evicted";
  EXPECT_TRUE(oracle.tree_cached(2));
  EXPECT_EQ(oracle.cache_size(), 2u);
}

TEST(NetworkOracle, CapacityNeverExceededAcrossShards) {
  const RoadNetwork city = RoadNetwork::make_grid_city(12, 12, 1.0);
  // Capacity not divisible by the shard count: rounding must floor, never
  // exceed the requested bound.
  const NetworkOracle oracle(city, /*cache_capacity=*/10, /*shard_count=*/4);
  EXPECT_LE(oracle.cache_capacity(), 10u);
  Rng rng(37);
  for (int i = 0; i < 400; ++i) {
    const Point a{rng.uniform(0, 11), rng.uniform(0, 11)};
    const Point b{rng.uniform(0, 11), rng.uniform(0, 11)};
    (void)oracle.distance(a, b);
    EXPECT_LE(oracle.cache_size(), 10u);
  }
}

TEST(RoadNetwork, NearestNodeWorksWithoutExplicitSnapIndex) {
  // The snap index must build itself lazily: never call build_snap_index.
  RoadNetwork network;
  network.add_node({0, 0});
  network.add_node({2, 0});
  network.add_node({0, 2});
  network.add_node({5, 5});
  EXPECT_EQ(network.nearest_node({0.2, 0.1}), 0);
  EXPECT_EQ(network.nearest_node({1.8, 0.3}), 1);
  EXPECT_EQ(network.nearest_node({4.0, 4.5}), 3);
  // Adding a node invalidates the lazily built index; the next snap must
  // see the newcomer.
  const NodeId added = network.add_node({10, 10});
  EXPECT_EQ(network.nearest_node({9.5, 9.5}), added);
}

TEST(RoadNetwork, SnapManyMatchesNearestNode) {
  const RoadNetwork city = RoadNetwork::make_grid_city(7, 5, 1.0, 0.2, 0.0, 13);
  Rng rng(41);
  std::vector<Point> points;
  for (int i = 0; i < 64; ++i) {
    points.push_back({rng.uniform(-1.0, 7.0), rng.uniform(-1.0, 5.0)});
  }
  const std::vector<NodeId> snapped = city.snap_many(points);
  ASSERT_EQ(snapped.size(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(snapped[i], city.nearest_node(points[i])) << "point " << i;
  }
  EXPECT_TRUE(city.snap_many({}).empty());
}

TEST(RoadNetwork, ShortestPathsToMatchesForwardTransposed) {
  // Directed city with closures: entry v of shortest_paths_to(t) must be
  // the forward distance v -> t.
  const RoadNetwork city = RoadNetwork::make_grid_city(6, 6, 1.0, 0.25, 0.2, 19);
  for (const NodeId target : {0, 7, 21, 35}) {
    const std::vector<double> to_target = city.shortest_paths_to(target);
    for (NodeId v = 0; v < static_cast<NodeId>(city.node_count()); ++v) {
      const double forward =
          city.shortest_paths_from(v)[static_cast<std::size_t>(target)];
      EXPECT_NEAR(to_target[static_cast<std::size_t>(v)], forward, 1e-9)
          << "v=" << v << " target=" << target;
    }
  }
}

TEST(RoadNetwork, ShortestPathsToRespectsOneWayStreets) {
  RoadNetwork network;
  network.add_node({0, 0});
  network.add_node({1, 0});
  network.add_node({2, 0});
  network.add_edge(0, 1);
  network.add_edge(1, 2);
  network.add_edge(2, 0, 5.0);
  const std::vector<double> to_two = network.shortest_paths_to(2);
  EXPECT_DOUBLE_EQ(to_two[0], 2.0);
  EXPECT_DOUBLE_EQ(to_two[1], 1.0);
  EXPECT_DOUBLE_EQ(to_two[2], 0.0);
  const std::vector<double> to_zero = network.shortest_paths_to(0);
  EXPECT_DOUBLE_EQ(to_zero[2], 5.0);
  EXPECT_DOUBLE_EQ(to_zero[1], 6.0);  // 1 -> 2 -> 0
}

TEST(RoadNetwork, BidirectionalShortestPathMatchesFullDijkstra) {
  const RoadNetwork city = RoadNetwork::make_grid_city(9, 9, 1.0, 0.3, 0.25, 23);
  Rng rng(43);
  for (int i = 0; i < 200; ++i) {
    const auto s = static_cast<NodeId>(rng.uniform_int(0, 80));
    const auto t = static_cast<NodeId>(rng.uniform_int(0, 80));
    const double full = city.shortest_paths_from(s)[static_cast<std::size_t>(t)];
    EXPECT_NEAR(city.shortest_path(s, t), full, 1e-9) << s << " -> " << t;
  }
}

TEST(RoadNetwork, BidirectionalShortestPathHandlesOneWayAndUnreachable) {
  RoadNetwork network;
  network.add_node({0, 0});
  network.add_node({1, 0});
  network.add_node({2, 0});
  network.add_node({9, 9});  // isolated
  network.add_edge(0, 1);
  network.add_edge(1, 2);
  EXPECT_DOUBLE_EQ(network.shortest_path(0, 2), 2.0);
  EXPECT_EQ(network.shortest_path(2, 0), kInfiniteDistance);
  EXPECT_EQ(network.shortest_path(0, 3), kInfiniteDistance);
  EXPECT_EQ(network.shortest_path(3, 0), kInfiniteDistance);
  EXPECT_DOUBLE_EQ(network.shortest_path(1, 1), 0.0);
}

TEST(RoadNetwork, CopiedNetworkAnswersTheSameQueries) {
  const RoadNetwork city = RoadNetwork::make_grid_city(5, 5, 1.0, 0.2, 0.1, 29);
  const RoadNetwork copy = city;  // exercises the custom copy constructor
  EXPECT_EQ(copy.node_count(), city.node_count());
  EXPECT_EQ(copy.edge_count(), city.edge_count());
  Rng rng(47);
  for (int i = 0; i < 50; ++i) {
    const Point p{rng.uniform(0, 4), rng.uniform(0, 4)};
    EXPECT_EQ(copy.nearest_node(p), city.nearest_node(p));
  }
  EXPECT_DOUBLE_EQ(copy.shortest_path(0, 24), city.shortest_path(0, 24));
}

TEST(NetworkOracle, DistancesFromMatchesPointwiseExactly) {
  const RoadNetwork city = RoadNetwork::make_grid_city(8, 8, 1.0, 0.25, 0.15, 31);
  const NetworkOracle oracle(city);
  Rng rng(53);
  const Point source{rng.uniform(0, 7), rng.uniform(0, 7)};
  std::vector<Point> targets;
  for (int i = 0; i < 100; ++i) {
    targets.push_back({rng.uniform(0, 7), rng.uniform(0, 7)});
  }
  const std::vector<double> bulk = oracle.distances_from(source, targets);
  ASSERT_EQ(bulk.size(), targets.size());
  for (std::size_t i = 0; i < targets.size(); ++i) {
    // Same forward tree, same snap legs, same addition order: bitwise equal.
    EXPECT_DOUBLE_EQ(bulk[i], oracle.distance(source, targets[i])) << "target " << i;
  }
}

TEST(NetworkOracle, DistancesToMatchesPointwiseUpToSummationOrder) {
  const RoadNetwork city = RoadNetwork::make_grid_city(8, 8, 1.0, 0.25, 0.15, 31);
  const NetworkOracle oracle(city);
  Rng rng(59);
  const Point target{rng.uniform(0, 7), rng.uniform(0, 7)};
  std::vector<Point> sources;
  for (int i = 0; i < 100; ++i) {
    sources.push_back({rng.uniform(0, 7), rng.uniform(0, 7)});
  }
  const std::vector<double> bulk = oracle.distances_to(sources, target);
  ASSERT_EQ(bulk.size(), sources.size());
  for (std::size_t i = 0; i < sources.size(); ++i) {
    // Reverse trees accumulate edge lengths in the opposite order, so the
    // values agree up to floating-point summation order.
    EXPECT_NEAR(bulk[i], oracle.distance(sources[i], target), 1e-9) << "source " << i;
  }
}

TEST(NetworkOracle, DistancesToRespectsOneWayDirection) {
  // D(taxi -> pickup) on a one-way street must not be flipped by the
  // reverse-tree bulk path.
  RoadNetwork network;
  network.add_node({0, 0});
  network.add_node({1, 0});
  network.add_node({2, 0});
  network.add_edge(0, 1);
  network.add_edge(1, 2);
  network.add_edge(2, 0, 5.0);
  const NetworkOracle oracle(network);
  const std::vector<Point> sources{{0, 0}, {2, 0}};
  const std::vector<double> bulk =
      oracle.distances_to(std::span<const Point>(sources), {1, 0});
  EXPECT_DOUBLE_EQ(bulk[0], 1.0);  // 0 -> 1 along the one-way
  EXPECT_DOUBLE_EQ(bulk[1], 6.0);  // 2 -> 0 -> 1, not the reverse hop
}

TEST(NetworkOracle, PrepareFrameKeepsAnswersIdentical) {
  const RoadNetwork city = RoadNetwork::make_grid_city(6, 6, 1.0, 0.2, 0.1, 61);
  const NetworkOracle warmed(city);
  const NetworkOracle cold(city);
  Rng rng(67);
  std::vector<Point> frame;
  for (int i = 0; i < 40; ++i) {
    frame.push_back({rng.uniform(0, 5), rng.uniform(0, 5)});
  }
  warmed.prepare_frame(frame);
  for (std::size_t i = 0; i + 1 < frame.size(); ++i) {
    EXPECT_DOUBLE_EQ(warmed.distance(frame[i], frame[i + 1]),
                     cold.distance(frame[i], frame[i + 1]));
  }
}

TEST(NetworkOracle, ConcurrentQueriesMatchSerialAnswers) {
  const RoadNetwork city = RoadNetwork::make_grid_city(10, 10, 1.0, 0.25, 0.2, 71);
  // Small cache so the threads churn evictions while racing.
  const NetworkOracle oracle(city, /*cache_capacity=*/8, /*shard_count=*/4);
  ASSERT_TRUE(oracle.capabilities().concurrent_queries);

  constexpr int kThreads = 4;
  constexpr int kQueries = 200;
  std::vector<std::vector<Point>> points(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    Rng rng(100 + static_cast<std::uint64_t>(w));
    for (int i = 0; i < kQueries + 1; ++i) {
      points[static_cast<std::size_t>(w)].push_back(
          {rng.uniform(0, 9), rng.uniform(0, 9)});
    }
  }

  std::vector<std::vector<double>> parallel(kThreads);
  {
    std::vector<std::thread> workers;
    for (int w = 0; w < kThreads; ++w) {
      workers.emplace_back([&, w] {
        const auto& mine = points[static_cast<std::size_t>(w)];
        auto& out = parallel[static_cast<std::size_t>(w)];
        oracle.prepare_frame(mine);
        for (int i = 0; i < kQueries; ++i) {
          out.push_back(oracle.distance(mine[static_cast<std::size_t>(i)],
                                        mine[static_cast<std::size_t>(i) + 1]));
        }
        // Bulk paths race the same shards.
        (void)oracle.distances_from(mine[0], mine);
        (void)oracle.distances_to(mine, mine[0]);
      });
    }
    for (std::thread& worker : workers) worker.join();
  }

  const NetworkOracle serial(city, /*cache_capacity=*/8, /*shard_count=*/4);
  for (int w = 0; w < kThreads; ++w) {
    const auto& mine = points[static_cast<std::size_t>(w)];
    for (int i = 0; i < kQueries; ++i) {
      EXPECT_DOUBLE_EQ(parallel[static_cast<std::size_t>(w)][static_cast<std::size_t>(i)],
                       serial.distance(mine[static_cast<std::size_t>(i)],
                                       mine[static_cast<std::size_t>(i) + 1]))
          << "worker " << w << " query " << i;
    }
  }
  EXPECT_LE(oracle.cache_size(), oracle.cache_capacity());
}

}  // namespace
}  // namespace o2o::geo
