#include "geo/distance_oracle.h"

#include <gtest/gtest.h>

#include "util/contracts.h"
#include "util/rng.h"

namespace o2o::geo {
namespace {

TEST(EuclideanOracle, MatchesFreeFunction) {
  const EuclideanOracle oracle;
  EXPECT_DOUBLE_EQ(oracle.distance({0, 0}, {3, 4}), 5.0);
}

TEST(ManhattanOracle, MatchesFreeFunction) {
  const ManhattanOracle oracle;
  EXPECT_DOUBLE_EQ(oracle.distance({0, 0}, {3, 4}), 7.0);
}

TEST(CircuityOracle, ScalesEuclidean) {
  const CircuityOracle oracle(1.3);
  EXPECT_DOUBLE_EQ(oracle.distance({0, 0}, {3, 4}), 6.5);
  EXPECT_DOUBLE_EQ(oracle.factor(), 1.3);
}

TEST(CircuityOracle, RejectsFactorBelowOne) {
  EXPECT_THROW(CircuityOracle(0.9), ContractViolation);
}

/// Metric axioms that every oracle in the library must satisfy.
class OracleAxioms : public ::testing::TestWithParam<int> {
 protected:
  const DistanceOracle& oracle() const {
    static const EuclideanOracle euclidean;
    static const ManhattanOracle manhattan;
    static const CircuityOracle circuity{1.4};
    switch (GetParam()) {
      case 0:
        return euclidean;
      case 1:
        return manhattan;
      default:
        return circuity;
    }
  }
};

TEST_P(OracleAxioms, IdentityNonNegativitySymmetryTriangle) {
  Rng rng(99 + static_cast<std::uint64_t>(GetParam()));
  for (int i = 0; i < 200; ++i) {
    const Point a{rng.uniform(-50, 50), rng.uniform(-50, 50)};
    const Point b{rng.uniform(-50, 50), rng.uniform(-50, 50)};
    const Point c{rng.uniform(-50, 50), rng.uniform(-50, 50)};
    EXPECT_DOUBLE_EQ(oracle().distance(a, a), 0.0);
    EXPECT_GE(oracle().distance(a, b), 0.0);
    EXPECT_DOUBLE_EQ(oracle().distance(a, b), oracle().distance(b, a));
    EXPECT_LE(oracle().distance(a, c),
              oracle().distance(a, b) + oracle().distance(b, c) + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(AllOracles, OracleAxioms, ::testing::Values(0, 1, 2));

TEST_P(OracleAxioms, DefaultBulkQueriesMatchPointwise) {
  Rng rng(7 + static_cast<std::uint64_t>(GetParam()));
  const Point anchor{rng.uniform(-50, 50), rng.uniform(-50, 50)};
  std::vector<Point> batch;
  for (int i = 0; i < 50; ++i) {
    batch.push_back({rng.uniform(-50, 50), rng.uniform(-50, 50)});
  }
  const std::vector<double> from = oracle().distances_from(anchor, batch);
  const std::vector<double> to = oracle().distances_to(batch, anchor);
  ASSERT_EQ(from.size(), batch.size());
  ASSERT_EQ(to.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_DOUBLE_EQ(from[i], oracle().distance(anchor, batch[i]));
    EXPECT_DOUBLE_EQ(to[i], oracle().distance(batch[i], anchor));
  }
  EXPECT_TRUE(oracle().distances_from(anchor, {}).empty());
  EXPECT_TRUE(oracle().distances_to({}, anchor).empty());
  oracle().prepare_frame(batch);  // default no-op must be callable
}

}  // namespace
}  // namespace o2o::geo
