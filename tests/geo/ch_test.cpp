// Differential suite for the contraction-hierarchy backend: CH query ==
// plain Dijkstra on randomized directed graphs, CHOracle == NetworkOracle
// (bitwise on integer weights, bounded-relative on float weights) across
// every DistanceOracle entry point, serialization round-trips, and
// concurrent queries after prepare_frame (the TSan job runs this file).
#include "geo/ch/ch_oracle.h"
#include "geo/ch/contraction_hierarchy.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <thread>
#include <vector>

#include "geo/road_network.h"
#include "util/contracts.h"
#include "util/rng.h"

namespace o2o::geo {
namespace {

/// Random directed graph: n random points, a random out-tree for some
/// connectivity, plus `extra` random one-way edges. Weights default to
/// the Euclidean gap (float weights) unless `integer_weights`.
RoadNetwork random_digraph(std::size_t n, std::size_t extra, std::uint64_t seed,
                           bool integer_weights = false) {
  Rng rng(seed);
  RoadNetwork network;
  for (std::size_t i = 0; i < n; ++i) {
    network.add_node(Point{rng.uniform(0.0, 20.0), rng.uniform(0.0, 20.0)});
  }
  const auto weight = [&](NodeId, NodeId) {
    return integer_weights ? static_cast<double>(rng.uniform_int(1, 9)) : -1.0;
  };
  for (std::size_t i = 1; i < n; ++i) {
    const NodeId parent = static_cast<NodeId>(rng.uniform_index(i));
    network.add_edge(parent, static_cast<NodeId>(i), weight(parent, static_cast<NodeId>(i)));
  }
  for (std::size_t e = 0; e < extra; ++e) {
    const NodeId from = static_cast<NodeId>(rng.uniform_index(n));
    const NodeId to = static_cast<NodeId>(rng.uniform_index(n));
    if (from == to) continue;
    network.add_edge(from, to, weight(from, to));
  }
  return network;
}

/// Grid city with *integer* edge lengths: every edge weight drawn from
/// {1..5} km. Integer weights sum exactly in doubles, which is what the
/// bitwise CHOracle == NetworkOracle assertions rely on.
RoadNetwork integer_grid(int cols, int rows, std::uint64_t seed) {
  Rng rng(seed);
  RoadNetwork network;
  const auto node_at = [cols](int x, int y) { return static_cast<NodeId>(y * cols + x); };
  for (int y = 0; y < rows; ++y) {
    for (int x = 0; x < cols; ++x) {
      network.add_node(Point{static_cast<double>(x), static_cast<double>(y)});
    }
  }
  for (int y = 0; y < rows; ++y) {
    for (int x = 0; x < cols; ++x) {
      if (x + 1 < cols) {
        network.add_bidirectional_edge(node_at(x, y), node_at(x + 1, y),
                                       static_cast<double>(rng.uniform_int(1, 5)));
      }
      if (y + 1 < rows) {
        network.add_bidirectional_edge(node_at(x, y), node_at(x, y + 1),
                                       static_cast<double>(rng.uniform_int(1, 5)));
      }
    }
  }
  return network;
}

std::vector<Point> random_points(std::size_t count, std::uint64_t seed, double extent) {
  Rng rng(seed);
  std::vector<Point> points;
  points.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    points.push_back(Point{rng.uniform(0.0, extent), rng.uniform(0.0, extent)});
  }
  return points;
}

// --- ContractionHierarchy core --------------------------------------------

TEST(ContractionHierarchy, MatchesDijkstraOnRandomDirectedGraphs) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const RoadNetwork network = random_digraph(120, 360, seed);
    const ContractionHierarchy ch = ContractionHierarchy::build(network);
    Rng rng(seed * 97);
    for (int trial = 0; trial < 60; ++trial) {
      const NodeId s = static_cast<NodeId>(rng.uniform_index(network.node_count()));
      const NodeId t = static_cast<NodeId>(rng.uniform_index(network.node_count()));
      const double expected = network.shortest_path(s, t);
      const double actual = ch.query(s, t);
      if (std::isinf(expected)) {
        EXPECT_TRUE(std::isinf(actual)) << "seed " << seed << " pair " << s << "->" << t;
      } else {
        // Shortcuts re-associate the sum along the path: bounded-relative,
        // not bitwise, on float weights.
        EXPECT_NEAR(actual, expected, 1e-9 * std::max(1.0, expected))
            << "seed " << seed << " pair " << s << "->" << t;
      }
    }
  }
}

TEST(ContractionHierarchy, ExactOnIntegerWeights) {
  const RoadNetwork network = random_digraph(100, 300, 11, /*integer_weights=*/true);
  const ContractionHierarchy ch = ContractionHierarchy::build(network);
  Rng rng(7);
  for (int trial = 0; trial < 80; ++trial) {
    const NodeId s = static_cast<NodeId>(rng.uniform_index(network.node_count()));
    const NodeId t = static_cast<NodeId>(rng.uniform_index(network.node_count()));
    // Integer sums are exact in doubles: bitwise equality.
    EXPECT_EQ(ch.query(s, t), network.shortest_path(s, t)) << s << "->" << t;
  }
}

TEST(ContractionHierarchy, HandlesParallelEdgesAndSelfLoops) {
  RoadNetwork network;
  network.add_node({0, 0});
  network.add_node({1, 0});
  network.add_node({2, 0});
  network.add_edge(0, 0, 5.0);  // self-loop: never useful
  network.add_edge(0, 1, 3.0);
  network.add_edge(0, 1, 1.0);  // parallel, better
  network.add_edge(1, 2, 2.0);
  network.add_edge(0, 2, 9.0);  // dominated direct edge
  const ContractionHierarchy ch = ContractionHierarchy::build(network);
  EXPECT_DOUBLE_EQ(ch.query(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(ch.query(0, 2), 3.0);
  EXPECT_EQ(ch.query(2, 0), kInfiniteDistance);
  EXPECT_DOUBLE_EQ(ch.query(1, 1), 0.0);
}

TEST(ContractionHierarchy, TightWitnessLimitStaysExact) {
  // An exhausted witness search inserts the shortcut conservatively, so
  // even settle-limit 1 must keep every query exact (just more
  // shortcuts). Integer weights so the two hierarchies compare bitwise.
  const RoadNetwork network = random_digraph(80, 240, 3, /*integer_weights=*/true);
  const ContractionHierarchy loose = ContractionHierarchy::build(network);
  ContractionHierarchy::BuildOptions tight;
  tight.witness_settle_limit = 1;
  const ContractionHierarchy strict = ContractionHierarchy::build(network, tight);
  EXPECT_GE(strict.shortcut_count(), loose.shortcut_count());
  Rng rng(5);
  for (int trial = 0; trial < 40; ++trial) {
    const NodeId s = static_cast<NodeId>(rng.uniform_index(network.node_count()));
    const NodeId t = static_cast<NodeId>(rng.uniform_index(network.node_count()));
    EXPECT_EQ(strict.query(s, t), loose.query(s, t));
  }
}

TEST(ContractionHierarchy, SearchSpacesAreSortedAndRootedAtZero) {
  const RoadNetwork network = random_digraph(60, 180, 9);
  const ContractionHierarchy ch = ContractionHierarchy::build(network);
  for (NodeId node : {NodeId{0}, NodeId{17}, NodeId{59}}) {
    for (const bool backward : {false, true}) {
      const auto space = ch.search_space(node, backward);
      ASSERT_FALSE(space.empty());
      bool found_root = false;
      for (std::size_t i = 0; i < space.size(); ++i) {
        if (i > 0) EXPECT_LT(space[i - 1].node, space[i].node);
        if (space[i].node == node) {
          EXPECT_DOUBLE_EQ(space[i].distance, 0.0);
          found_root = true;
        }
      }
      EXPECT_TRUE(found_root);
    }
  }
}

TEST(ContractionHierarchy, RanksAreAPermutation) {
  const RoadNetwork network = random_digraph(50, 150, 21);
  const ContractionHierarchy ch = ContractionHierarchy::build(network);
  std::vector<bool> seen(network.node_count(), false);
  for (std::size_t i = 0; i < network.node_count(); ++i) {
    const std::uint32_t rank = ch.rank(static_cast<NodeId>(i));
    ASSERT_LT(rank, network.node_count());
    EXPECT_FALSE(seen[rank]);
    seen[rank] = true;
  }
}

// --- serialization --------------------------------------------------------

TEST(ContractionHierarchy, SerializationRoundTripsExactly) {
  const RoadNetwork network = random_digraph(70, 210, 13);
  const ContractionHierarchy built = ContractionHierarchy::build(network);
  std::stringstream stream;
  built.save(stream);
  const ContractionHierarchy loaded =
      ContractionHierarchy::load(stream, network.fingerprint());
  EXPECT_EQ(loaded.node_count(), built.node_count());
  EXPECT_EQ(loaded.upward_edge_count(), built.upward_edge_count());
  EXPECT_EQ(loaded.shortcut_count(), built.shortcut_count());
  EXPECT_EQ(loaded.graph_fingerprint(), built.graph_fingerprint());
  Rng rng(3);
  for (int trial = 0; trial < 40; ++trial) {
    const NodeId s = static_cast<NodeId>(rng.uniform_index(network.node_count()));
    const NodeId t = static_cast<NodeId>(rng.uniform_index(network.node_count()));
    EXPECT_EQ(loaded.query(s, t), built.query(s, t));
  }
}

TEST(ContractionHierarchy, LoadRejectsFingerprintMismatch) {
  const RoadNetwork network = random_digraph(30, 90, 17);
  const ContractionHierarchy built = ContractionHierarchy::build(network);
  std::stringstream stream;
  built.save(stream);
  EXPECT_THROW(ContractionHierarchy::load(stream, network.fingerprint() + 1),
               ContractViolation);
}

TEST(ContractionHierarchy, LoadRejectsTruncatedStream) {
  const RoadNetwork network = random_digraph(30, 90, 19);
  const ContractionHierarchy built = ContractionHierarchy::build(network);
  std::stringstream stream;
  built.save(stream);
  const std::string bytes = stream.str();
  std::stringstream truncated(bytes.substr(0, bytes.size() / 2));
  EXPECT_THROW(ContractionHierarchy::load(truncated), ContractViolation);
}

TEST(ContractionHierarchy, LoadRejectsGarbage) {
  std::stringstream garbage("not a hierarchy artifact");
  EXPECT_THROW(ContractionHierarchy::load(garbage), ContractViolation);
}

// --- CHOracle vs NetworkOracle --------------------------------------------

TEST(CHOracle, BitwiseEqualToNetworkOracleOnIntegerWeights) {
  const RoadNetwork network = integer_grid(12, 12, 23);
  const NetworkOracle reference(network);
  const CHOracle oracle(network, ContractionHierarchy::build(network));
  const std::vector<Point> points = random_points(40, 29, 11.0);
  for (const Point& a : points) {
    for (const Point& b : points) {
      // Same snap, same `snap_a + leg + snap_b` expression order, integer
      // network leg: the doubles must match bit for bit.
      EXPECT_EQ(oracle.distance(a, b), reference.distance(a, b));
    }
  }
}

TEST(CHOracle, BulkRowsMatchNetworkOracleBitwise) {
  const RoadNetwork network = integer_grid(10, 10, 31);
  const NetworkOracle reference(network);
  const CHOracle oracle(network, ContractionHierarchy::build(network));
  const std::vector<Point> points = random_points(60, 37, 9.0);
  const Point pivot{4.5, 4.5};

  const auto from_ch = oracle.distances_from(pivot, points);
  const auto from_ref = reference.distances_from(pivot, points);
  const auto to_ch = oracle.distances_to(points, pivot);
  const auto to_ref = reference.distances_to(points, pivot);
  std::vector<double> from_into(points.size());
  std::vector<double> to_into(points.size());
  oracle.distances_from_into(pivot, points, from_into.data());
  oracle.distances_to_into(points, pivot, to_into.data());
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(from_ch[i], from_ref[i]) << i;
    EXPECT_EQ(to_ch[i], to_ref[i]) << i;
    EXPECT_EQ(from_into[i], from_ch[i]) << i;
    EXPECT_EQ(to_into[i], to_ch[i]) << i;
    // Rows must also equal the pairwise calls byte for byte.
    EXPECT_EQ(from_ch[i], oracle.distance(pivot, points[i])) << i;
    EXPECT_EQ(to_ch[i], oracle.distance(points[i], pivot)) << i;
  }
}

TEST(CHOracle, CloseToNetworkOracleOnFloatWeights) {
  const RoadNetwork network =
      RoadNetwork::make_grid_city(9, 9, 1.0, /*jitter_km=*/0.3, /*closure_fraction=*/0.15,
                                  /*seed=*/41);
  const NetworkOracle reference(network);
  const CHOracle oracle(network, ContractionHierarchy::build(network));
  const std::vector<Point> points = random_points(30, 43, 8.0);
  for (const Point& a : points) {
    for (const Point& b : points) {
      const double expected = reference.distance(a, b);
      EXPECT_NEAR(oracle.distance(a, b), expected, 1e-9 * std::max(1.0, expected));
    }
  }
}

TEST(CHOracle, RespectsOneWayStreets) {
  RoadNetwork network;
  network.add_node({0, 0});
  network.add_node({5, 0});
  network.add_edge(0, 1, 5.0);       // eastbound only
  network.add_edge(1, 0, 12.0);      // long way back
  const NetworkOracle reference(network);
  const CHOracle oracle(network, ContractionHierarchy::build(network));
  const Point a{0.1, 0.0};
  const Point b{4.9, 0.0};
  EXPECT_EQ(oracle.distance(a, b), reference.distance(a, b));
  EXPECT_EQ(oracle.distance(b, a), reference.distance(b, a));
  EXPECT_NE(oracle.distance(a, b), oracle.distance(b, a));
  EXPECT_FALSE(oracle.capabilities().symmetric_distances);
  EXPECT_TRUE(oracle.capabilities().concurrent_queries);
}

TEST(CHOracle, RejectsHierarchyFromDifferentGraph) {
  const RoadNetwork a = integer_grid(5, 5, 1);
  const RoadNetwork b = integer_grid(5, 5, 2);
  ContractionHierarchy ch = ContractionHierarchy::build(a);
  EXPECT_THROW(CHOracle(b, std::move(ch)), ContractViolation);
}

TEST(CHOracle, PrepareFrameWarmsSpacesAndCarriesDeltas) {
  const RoadNetwork network = integer_grid(8, 8, 3);
  const CHOracle oracle(network, ContractionHierarchy::build(network));
  const std::vector<Point> frame = random_points(24, 5, 7.0);
  oracle.prepare_frame(frame);
  EXPECT_EQ(oracle.last_prepare_carried(), 0u);
  // Every frame point's snapped node has both spaces resident.
  for (const Point& p : frame) {
    const NodeId node = network.nearest_node(p);
    EXPECT_TRUE(oracle.space_cached(node, /*backward=*/false));
    EXPECT_TRUE(oracle.space_cached(node, /*backward=*/true));
  }
  // Identical frame: everything carries, nothing re-warms.
  oracle.prepare_frame(frame);
  EXPECT_EQ(oracle.last_prepare_carried(), frame.size());
  // Half-churned frame: exactly the surviving half carries.
  std::vector<Point> churned(frame.begin(), frame.begin() + 12);
  const std::vector<Point> fresh = random_points(12, 59, 7.0);
  churned.insert(churned.end(), fresh.begin(), fresh.end());
  oracle.prepare_frame(churned);
  EXPECT_EQ(oracle.last_prepare_carried(), 12u);
}

TEST(CHOracle, ConcurrentQueriesAgreeWithSerial) {
  const RoadNetwork network = integer_grid(10, 10, 47);
  const NetworkOracle reference(network);
  const CHOracle oracle(network, ContractionHierarchy::build(network));
  const std::vector<Point> points = random_points(64, 53, 9.0);
  oracle.prepare_frame(points);

  std::vector<double> expected(points.size() * points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (std::size_t j = 0; j < points.size(); ++j) {
      expected[i * points.size() + j] = reference.distance(points[i], points[j]);
    }
  }

  constexpr int kThreads = 8;
  std::vector<double> actual(points.size() * points.size());
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int worker = 0; worker < kThreads; ++worker) {
    workers.emplace_back([&, worker] {
      for (std::size_t i = static_cast<std::size_t>(worker); i < points.size();
           i += kThreads) {
        oracle.distances_from_into(
            points[i], points, actual.data() + i * points.size());
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  for (std::size_t k = 0; k < actual.size(); ++k) {
    EXPECT_EQ(actual[k], expected[k]) << k;
  }
}

TEST(CHOracle, LruEvictionKeepsAnswersCorrect) {
  const RoadNetwork network = integer_grid(8, 8, 61);
  const NetworkOracle reference(network);
  // Capacity far below the working set: every query churns the cache.
  const CHOracle oracle(network, ContractionHierarchy::build(network),
                        /*cache_capacity=*/4, /*shard_count=*/2);
  EXPECT_EQ(oracle.cache_capacity(), 4u);
  const std::vector<Point> points = random_points(40, 67, 7.0);
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_EQ(oracle.distance(points[i - 1], points[i]),
              reference.distance(points[i - 1], points[i]));
  }
  EXPECT_LE(oracle.cache_size(), oracle.cache_capacity());
}

}  // namespace
}  // namespace o2o::geo
