// The pluggable distance-backend API: CLI grammar parsing, factory
// resolution for every kind (including CH artifact build/load/stale
// rebuild), and the DispatchConfig integration (validate rules, the
// describe() provenance keys).
#include "geo/backend.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "core/dispatch_config.h"
#include "geo/import/dimacs.h"
#include "util/contracts.h"
#include "util/rng.h"

namespace o2o::geo {
namespace {

RoadNetwork small_city(std::uint64_t seed) {
  Rng rng(seed);
  RoadNetwork network;
  const int side = 8;
  for (int y = 0; y < side; ++y) {
    for (int x = 0; x < side; ++x) {
      network.add_node(Point{static_cast<double>(x), static_cast<double>(y)});
    }
  }
  const auto at = [side](int x, int y) { return static_cast<NodeId>(y * side + x); };
  for (int y = 0; y < side; ++y) {
    for (int x = 0; x < side; ++x) {
      if (x + 1 < side) {
        network.add_bidirectional_edge(at(x, y), at(x + 1, y),
                                       static_cast<double>(rng.uniform_int(1, 4)));
      }
      if (y + 1 < side) {
        network.add_bidirectional_edge(at(x, y), at(x, y + 1),
                                       static_cast<double>(rng.uniform_int(1, 4)));
      }
    }
  }
  return network;
}

// --- parse_distance_backend ------------------------------------------------

TEST(ParseDistanceBackend, AcceptsTheGrammar) {
  DistanceBackendSpec spec;
  ASSERT_TRUE(parse_distance_backend("euclid", &spec));
  EXPECT_EQ(spec.kind, DistanceBackendKind::kEuclidean);
  ASSERT_TRUE(parse_distance_backend("euclidean", &spec));
  EXPECT_EQ(spec.kind, DistanceBackendKind::kEuclidean);
  ASSERT_TRUE(parse_distance_backend("manhattan", &spec));
  EXPECT_EQ(spec.kind, DistanceBackendKind::kManhattan);

  ASSERT_TRUE(parse_distance_backend("circuity", &spec));
  EXPECT_EQ(spec.kind, DistanceBackendKind::kCircuity);
  EXPECT_DOUBLE_EQ(spec.circuity_factor, 1.3);
  ASSERT_TRUE(parse_distance_backend("circuity:1.45", &spec));
  EXPECT_DOUBLE_EQ(spec.circuity_factor, 1.45);

  ASSERT_TRUE(parse_distance_backend("dijkstra:city.gr,city.co", &spec));
  EXPECT_EQ(spec.kind, DistanceBackendKind::kDijkstra);
  EXPECT_EQ(spec.dimacs_gr, "city.gr");
  EXPECT_EQ(spec.dimacs_co, "city.co");
  EXPECT_TRUE(spec.ch_artifact.empty());

  ASSERT_TRUE(parse_distance_backend("dijkstra:extract.osm", &spec));
  EXPECT_EQ(spec.osm_xml, "extract.osm");

  ASSERT_TRUE(parse_distance_backend("ch:city.gr,city.co,city.o2och", &spec));
  EXPECT_EQ(spec.kind, DistanceBackendKind::kContractionHierarchy);
  EXPECT_EQ(spec.ch_artifact, "city.o2och");
  ASSERT_TRUE(parse_distance_backend("ch:extract.osm,hier.o2och", &spec));
  EXPECT_EQ(spec.osm_xml, "extract.osm");
  EXPECT_EQ(spec.ch_artifact, "hier.o2och");
}

TEST(ParseDistanceBackend, RejectsMalformedSpecs) {
  DistanceBackendSpec spec;
  spec.kind = DistanceBackendKind::kManhattan;  // canary: must stay untouched
  EXPECT_FALSE(parse_distance_backend("warp-drive", &spec));
  EXPECT_FALSE(parse_distance_backend("euclid:what", &spec));
  EXPECT_FALSE(parse_distance_backend("circuity:0.5", &spec));
  EXPECT_FALSE(parse_distance_backend("circuity:fast", &spec));
  EXPECT_FALSE(parse_distance_backend("dijkstra", &spec));
  EXPECT_FALSE(parse_distance_backend("dijkstra:only.gr", &spec));
  EXPECT_FALSE(parse_distance_backend("dijkstra:a.gr,b.co,c.o2och", &spec));
  EXPECT_FALSE(parse_distance_backend("ch:", &spec));
  EXPECT_EQ(spec.kind, DistanceBackendKind::kManhattan);
}

// --- make_distance_oracle --------------------------------------------------

TEST(MakeDistanceOracle, MetricKinds) {
  const Point a{0.0, 0.0};
  const Point b{3.0, 4.0};
  DistanceBackendSpec spec;
  const DistanceBackend euclid = make_distance_oracle(spec);
  EXPECT_DOUBLE_EQ(euclid.oracle->distance(a, b), 5.0);
  EXPECT_EQ(euclid.network, nullptr);
  EXPECT_EQ(euclid.graph_fingerprint, 0u);

  spec.kind = DistanceBackendKind::kManhattan;
  EXPECT_DOUBLE_EQ(make_distance_oracle(spec).oracle->distance(a, b), 7.0);

  spec.kind = DistanceBackendKind::kCircuity;
  spec.circuity_factor = 1.2;
  EXPECT_DOUBLE_EQ(make_distance_oracle(spec).oracle->distance(a, b), 6.0);
}

TEST(MakeDistanceOracle, DijkstraFromProgrammaticNetwork) {
  auto network = std::make_shared<const RoadNetwork>(small_city(3));
  DistanceBackendSpec spec;
  spec.kind = DistanceBackendKind::kDijkstra;
  spec.network = network;
  const DistanceBackend backend = make_distance_oracle(spec);
  EXPECT_EQ(backend.network, network);
  EXPECT_EQ(backend.graph_fingerprint, network->fingerprint());
  const NetworkOracle reference(*network);
  const Point a{0.3, 0.4};
  const Point b{6.6, 5.2};
  EXPECT_EQ(backend.oracle->distance(a, b), reference.distance(a, b));
  EXPECT_FALSE(backend.oracle->capabilities().symmetric_distances);
}

TEST(MakeDistanceOracle, DijkstraFromExportedDimacsAutoDetects) {
  const RoadNetwork network = small_city(7);
  const std::string gr = testing::TempDir() + "/backend_city.gr";
  const std::string co = testing::TempDir() + "/backend_city.co";
  ASSERT_TRUE(write_dimacs_files(network, gr, co));
  DistanceBackendSpec spec;
  spec.kind = DistanceBackendKind::kDijkstra;
  spec.dimacs_gr = gr;
  spec.dimacs_co = co;
  const DistanceBackend backend = make_distance_oracle(spec);
  // Auto-detection recognizes our export header and reads plane km back.
  EXPECT_EQ(backend.graph_fingerprint, network.fingerprint());
  const NetworkOracle reference(network);
  const Point a{1.2, 0.7};
  const Point b{5.9, 6.1};
  EXPECT_EQ(backend.oracle->distance(a, b), reference.distance(a, b));
}

TEST(MakeDistanceOracle, ChBuildsSavesAndReloadsTheArtifact) {
  auto network = std::make_shared<const RoadNetwork>(small_city(11));
  const std::string artifact = testing::TempDir() + "/backend_city.o2och";
  std::remove(artifact.c_str());

  DistanceBackendSpec spec;
  spec.kind = DistanceBackendKind::kContractionHierarchy;
  spec.network = network;
  spec.ch_artifact = artifact;

  const DistanceBackend first = make_distance_oracle(spec);
  EXPECT_FALSE(first.ch_artifact_loaded);  // cold: built and saved
  EXPECT_NE(first.ch_artifact_hash, 0u);
  EXPECT_TRUE(std::ifstream(artifact, std::ios::binary).good());

  const DistanceBackend second = make_distance_oracle(spec);
  EXPECT_TRUE(second.ch_artifact_loaded);  // warm: loaded, not rebuilt
  EXPECT_EQ(second.ch_artifact_hash, first.ch_artifact_hash);

  const NetworkOracle reference(*network);
  const Point a{0.4, 2.2};
  const Point b{6.8, 4.9};
  EXPECT_EQ(first.oracle->distance(a, b), reference.distance(a, b));
  EXPECT_EQ(second.oracle->distance(a, b), first.oracle->distance(a, b));
}

TEST(MakeDistanceOracle, ChRebuildsAStaleArtifact) {
  auto old_city = std::make_shared<const RoadNetwork>(small_city(13));
  auto new_city = std::make_shared<const RoadNetwork>(small_city(17));
  const std::string artifact = testing::TempDir() + "/backend_stale.o2och";

  DistanceBackendSpec spec;
  spec.kind = DistanceBackendKind::kContractionHierarchy;
  spec.network = old_city;
  spec.ch_artifact = artifact;
  const DistanceBackend old_backend = make_distance_oracle(spec);
  EXPECT_FALSE(old_backend.ch_artifact_loaded);

  // Same artifact path, different graph: the stale file is rebuilt, and
  // the refreshed artifact then serves the new graph.
  spec.network = new_city;
  const DistanceBackend rebuilt = make_distance_oracle(spec);
  EXPECT_FALSE(rebuilt.ch_artifact_loaded);
  EXPECT_NE(rebuilt.ch_artifact_hash, old_backend.ch_artifact_hash);
  const DistanceBackend reloaded = make_distance_oracle(spec);
  EXPECT_TRUE(reloaded.ch_artifact_loaded);
  EXPECT_EQ(reloaded.ch_artifact_hash, rebuilt.ch_artifact_hash);
}

TEST(MakeDistanceOracle, RejectsAmbiguousOrMissingSources) {
  DistanceBackendSpec spec;
  spec.kind = DistanceBackendKind::kDijkstra;
  EXPECT_THROW(make_distance_oracle(spec), ContractViolation);  // no source
  spec.network = std::make_shared<const RoadNetwork>(small_city(1));
  spec.osm_xml = "extract.osm";
  EXPECT_THROW(make_distance_oracle(spec), ContractViolation);  // two sources
}

// --- DispatchConfig integration --------------------------------------------

TEST(DispatchConfigBackend, DescribeCarriesProvenance) {
  auto network = std::make_shared<const RoadNetwork>(small_city(19));
  DistanceBackendSpec spec;
  spec.kind = DistanceBackendKind::kContractionHierarchy;
  spec.network = network;
  const DistanceBackend backend = make_distance_oracle(spec);

  DispatchConfig config;
  config.with_distance_backend(backend);
  EXPECT_TRUE(config.validate().empty());
  EXPECT_EQ(config.distance_graph_fingerprint(), network->fingerprint());
  EXPECT_NE(config.ch_artifact_hash(), 0u);

  std::string kind_value;
  std::string fingerprint_value;
  std::string artifact_value;
  for (const auto& [key, value] : config.describe()) {
    if (key == "distance_backend") kind_value = value;
    if (key == "distance_graph_fingerprint") fingerprint_value = value;
    if (key == "ch_artifact_hash") artifact_value = value;
  }
  EXPECT_EQ(kind_value, "ch");
  EXPECT_EQ(fingerprint_value.size(), 16u);  // %016llx
  EXPECT_NE(fingerprint_value, "none");
  EXPECT_NE(artifact_value, "none");
}

TEST(DispatchConfigBackend, SpecAloneDescribesAsUnresolved) {
  DispatchConfig config;  // default spec: euclid
  std::string kind_value;
  std::string fingerprint_value;
  for (const auto& [key, value] : config.describe()) {
    if (key == "distance_backend") kind_value = value;
    if (key == "distance_graph_fingerprint") fingerprint_value = value;
  }
  EXPECT_EQ(kind_value, "euclid");
  EXPECT_EQ(fingerprint_value, "none");
}

TEST(DispatchConfigBackend, ValidateRejectsBadSpecs) {
  const auto has_backend_error = [](const DispatchConfig& config) {
    for (const ConfigError& error : config.validate()) {
      if (error.field == ConfigField::kDistanceBackend) return true;
    }
    return false;
  };

  DistanceBackendSpec bad_circuity;
  bad_circuity.kind = DistanceBackendKind::kCircuity;
  bad_circuity.circuity_factor = 0.5;
  EXPECT_TRUE(has_backend_error(DispatchConfig{}.with_distance_backend(bad_circuity)));

  DistanceBackendSpec no_source;
  no_source.kind = DistanceBackendKind::kContractionHierarchy;
  EXPECT_TRUE(has_backend_error(DispatchConfig{}.with_distance_backend(no_source)));

  DistanceBackendSpec half_pair;
  half_pair.kind = DistanceBackendKind::kDijkstra;
  half_pair.dimacs_gr = "only.gr";
  EXPECT_TRUE(has_backend_error(DispatchConfig{}.with_distance_backend(half_pair)));

  DistanceBackendSpec misplaced_artifact;
  misplaced_artifact.kind = DistanceBackendKind::kEuclidean;
  misplaced_artifact.ch_artifact = "hier.o2och";
  EXPECT_TRUE(
      has_backend_error(DispatchConfig{}.with_distance_backend(misplaced_artifact)));

  DistanceBackendSpec good;
  good.kind = DistanceBackendKind::kDijkstra;
  good.network = std::make_shared<const RoadNetwork>(small_city(23));
  EXPECT_FALSE(has_backend_error(DispatchConfig{}.with_distance_backend(good)));
}

}  // namespace
}  // namespace o2o::geo
