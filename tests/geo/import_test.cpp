// Importer suite: DIMACS .gr/.co parsing (inline and from the checked-in
// fixture), export/import round-trips down to the graph fingerprint, and
// the minimal OSM XML reader (highway filtering, oneway handling,
// node compaction).
#include "geo/import/dimacs.h"
#include "geo/import/osm_xml.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>

#include "geo/road_network.h"
#include "util/contracts.h"
#include "util/rng.h"

#ifndef O2O_FIXTURE_DIR
#define O2O_FIXTURE_DIR "tests/geo/fixtures"
#endif

namespace o2o::geo {
namespace {

// --- DIMACS ----------------------------------------------------------------

TEST(Dimacs, ParsesStreams) {
  std::istringstream gr(
      "c comment\n"
      "p sp 3 3\n"
      "a 1 2 5\n"
      "a 2 3 7\n"
      "a 3 1 1\n");
  std::istringstream co(
      "p aux sp co 3\n"
      "v 1 0 0\n"
      "v 2 3 0\n"
      "v 3 3 4\n");
  const RoadNetwork network = read_dimacs(gr, co);
  ASSERT_EQ(network.node_count(), 3u);
  EXPECT_EQ(network.edge_count(), 3u);
  EXPECT_DOUBLE_EQ(network.node_position(1).x, 3.0);
  EXPECT_DOUBLE_EQ(network.node_position(2).y, 4.0);
  EXPECT_DOUBLE_EQ(network.shortest_path(0, 2), 12.0);  // 5 + 7, one-way ring
  EXPECT_DOUBLE_EQ(network.shortest_path(2, 0), 1.0);
}

TEST(Dimacs, WeightScaleApplies) {
  std::istringstream gr("p sp 2 1\na 1 2 1500\n");
  std::istringstream co("p aux sp co 2\nv 1 0 0\nv 2 1 0\n");
  DimacsOptions options;
  options.weight_scale = 1e-3;  // metres -> km
  const RoadNetwork network = read_dimacs(gr, co, options);
  EXPECT_DOUBLE_EQ(network.edges_from(0)[0].length_km, 1.5);
}

TEST(Dimacs, ProjectsMicroDegreeCoordinates) {
  std::istringstream gr("p sp 2 1\na 1 2 1\n");
  // ~New York: 1 milli-degree of latitude apart (~0.111 km).
  std::istringstream co(
      "p aux sp co 2\n"
      "v 1 -74000000 40700000\n"
      "v 2 -74000000 40701000\n");
  DimacsOptions options;
  options.project_coordinates = true;
  const RoadNetwork network = read_dimacs(gr, co, options);
  EXPECT_DOUBLE_EQ(network.node_position(0).x, 0.0);  // projection reference
  EXPECT_DOUBLE_EQ(network.node_position(0).y, 0.0);
  EXPECT_NEAR(euclidean_distance(network.node_position(0), network.node_position(1)),
              0.1112, 1e-3);
}

TEST(Dimacs, ReadsCheckedInFixture) {
  const RoadNetwork network =
      read_dimacs_files(O2O_FIXTURE_DIR "/mini.gr", O2O_FIXTURE_DIR "/mini.co");
  ASSERT_EQ(network.node_count(), 6u);
  EXPECT_EQ(network.edge_count(), 14u);
  // Spine 1 -> 5 beats the 1 -> 2 -> 5 one-way jumper (3+9).
  EXPECT_DOUBLE_EQ(network.shortest_path(0, 4), 10.0);
  // The one-way jumpers only exist forward.
  EXPECT_DOUBLE_EQ(network.shortest_path(2, 5), 7.0);   // 3 -> 6 direct
  EXPECT_DOUBLE_EQ(network.shortest_path(5, 2), 7.0);   // back over the spine
}

TEST(Dimacs, RejectsMalformedInput) {
  {
    std::istringstream gr("a 1 2 5\n");  // arc before header
    std::istringstream co("p aux sp co 2\nv 1 0 0\nv 2 1 0\n");
    EXPECT_THROW(read_dimacs(gr, co), ContractViolation);
  }
  {
    std::istringstream gr("p sp 2 1\na 1 3 5\n");  // id out of range
    std::istringstream co("p aux sp co 2\nv 1 0 0\nv 2 1 0\n");
    EXPECT_THROW(read_dimacs(gr, co), ContractViolation);
  }
  {
    std::istringstream gr("p sp 2 2\na 1 2 5\n");  // fewer arcs than declared
    std::istringstream co("p aux sp co 2\nv 1 0 0\nv 2 1 0\n");
    EXPECT_THROW(read_dimacs(gr, co), ContractViolation);
  }
  {
    std::istringstream gr("p sp 2 1\na 1 2 5\n");
    std::istringstream co("p aux sp co 2\nv 1 0 0\n");  // node 2 uncovered
    EXPECT_THROW(read_dimacs(gr, co), ContractViolation);
  }
}

TEST(Dimacs, ExportImportRoundTripsTheFingerprint) {
  // Integer coordinates and integer weights survive the llround()
  // encoding exactly, so the re-import is the identical graph.
  Rng rng(5);
  RoadNetwork network;
  for (int i = 0; i < 30; ++i) {
    network.add_node(Point{static_cast<double>(rng.uniform_int(0, 20)),
                           static_cast<double>(rng.uniform_int(0, 20))});
  }
  for (int e = 0; e < 90; ++e) {
    const NodeId from = static_cast<NodeId>(rng.uniform_index(30));
    const NodeId to = static_cast<NodeId>(rng.uniform_index(30));
    if (from == to) continue;
    network.add_edge(from, to, static_cast<double>(rng.uniform_int(1, 9)));
  }
  std::stringstream gr;
  std::stringstream co;
  write_dimacs(network, gr, co);
  DimacsOptions options;
  options.coordinate_scale = 1e-6;
  const RoadNetwork reread = read_dimacs(gr, co, options);
  EXPECT_EQ(reread.node_count(), network.node_count());
  EXPECT_EQ(reread.edge_count(), network.edge_count());
  EXPECT_EQ(reread.fingerprint(), network.fingerprint());
  // Bitwise-identical graphs price bitwise-identically.
  EXPECT_EQ(reread.shortest_path(0, 29), network.shortest_path(0, 29));
}

// --- OSM XML ---------------------------------------------------------------

constexpr const char* kOsmExtract = R"(<?xml version="1.0" encoding="UTF-8"?>
<osm version="0.6" generator="test">
  <node id="101" lat="40.7000" lon="-74.0000"/>
  <node id="102" lat="40.7010" lon="-74.0000"/>
  <node id="103" lat="40.7010" lon="-73.9990"/>
  <node id="104" lat="40.7500" lon="-74.0500"/>
  <way id="7">
    <nd ref="101"/>
    <nd ref="102"/>
    <tag k="highway" v="residential"/>
  </way>
  <way id="8">
    <nd ref="102"/>
    <nd ref="103"/>
    <tag k="highway" v="primary"/>
    <tag k="oneway" v="yes"/>
  </way>
  <way id="9">
    <nd ref="103"/>
    <nd ref="101"/>
    <tag k="building" v="yes"/>
  </way>
</osm>
)";

TEST(OsmXml, ImportsHighwaysAndCompactsNodes) {
  std::istringstream in(kOsmExtract);
  const RoadNetwork network = read_osm_xml(in);
  // Node 104 is never referenced by a highway way; way 9 is a building.
  ASSERT_EQ(network.node_count(), 3u);
  EXPECT_EQ(network.edge_count(), 3u);  // 101<->102 both ways, 102->103 one way
  // ~0.111 km per milli-degree of latitude.
  EXPECT_NEAR(network.shortest_path(0, 1), 0.1112, 1e-3);
  EXPECT_LT(network.shortest_path(1, 2), kInfiniteDistance);
  EXPECT_EQ(network.shortest_path(2, 1), kInfiniteDistance);  // oneway=yes
}

TEST(OsmXml, ReverseOnewayFlipsDirection) {
  std::istringstream in(R"(<osm>
    <node id="1" lat="40.0" lon="-74.0"/>
    <node id="2" lat="40.001" lon="-74.0"/>
    <way id="1"><nd ref="1"/><nd ref="2"/>
      <tag k="highway" v="primary"/><tag k="oneway" v="-1"/></way>
  </osm>)");
  const RoadNetwork network = read_osm_xml(in);
  ASSERT_EQ(network.node_count(), 2u);
  EXPECT_EQ(network.shortest_path(0, 1), kInfiniteDistance);
  EXPECT_LT(network.shortest_path(1, 0), kInfiniteDistance);
}

TEST(OsmXml, EmptyWithoutHighways) {
  std::istringstream in(R"(<osm>
    <node id="1" lat="40.0" lon="-74.0"/>
    <way id="1"><nd ref="1"/><tag k="waterway" v="river"/></way>
  </osm>)");
  EXPECT_EQ(read_osm_xml(in).node_count(), 0u);
}

TEST(OsmXml, LengthFactorInflatesEdges) {
  std::istringstream plain(R"(<osm>
    <node id="1" lat="40.0" lon="-74.0"/>
    <node id="2" lat="40.001" lon="-74.0"/>
    <way id="1"><nd ref="1"/><nd ref="2"/><tag k="highway" v="primary"/></way>
  </osm>)");
  std::istringstream inflated(R"(<osm>
    <node id="1" lat="40.0" lon="-74.0"/>
    <node id="2" lat="40.001" lon="-74.0"/>
    <way id="1"><nd ref="1"/><nd ref="2"/><tag k="highway" v="primary"/></way>
  </osm>)");
  const RoadNetwork base = read_osm_xml(plain);
  OsmOptions options;
  options.length_factor = 1.3;
  const RoadNetwork curvy = read_osm_xml(inflated, options);
  EXPECT_DOUBLE_EQ(curvy.edges_from(0)[0].length_km,
                   1.3 * base.edges_from(0)[0].length_km);
}

TEST(OsmXml, RejectsWayWithUnknownNodeRef) {
  std::istringstream in(R"(<osm>
    <node id="1" lat="40.0" lon="-74.0"/>
    <way id="1"><nd ref="1"/><nd ref="999"/><tag k="highway" v="primary"/></way>
  </osm>)");
  EXPECT_THROW(read_osm_xml(in), ContractViolation);
}

}  // namespace
}  // namespace o2o::geo
