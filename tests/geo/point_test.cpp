#include "geo/point.h"

#include <gtest/gtest.h>

namespace o2o::geo {
namespace {

TEST(Point, ArithmeticOperators) {
  const Point a{1.0, 2.0};
  const Point b{3.0, -1.0};
  EXPECT_EQ(a + b, (Point{4.0, 1.0}));
  EXPECT_EQ(a - b, (Point{-2.0, 3.0}));
  EXPECT_EQ(a * 2.0, (Point{2.0, 4.0}));
  EXPECT_EQ(2.0 * a, (Point{2.0, 4.0}));
  EXPECT_NE(a, b);
}

TEST(Distance, EuclideanPythagoreanTriple) {
  EXPECT_DOUBLE_EQ(euclidean_distance({0, 0}, {3, 4}), 5.0);
}

TEST(Distance, EuclideanIsSymmetricAndZeroOnSelf) {
  const Point a{1.5, -2.5};
  const Point b{-4.0, 7.0};
  EXPECT_DOUBLE_EQ(euclidean_distance(a, b), euclidean_distance(b, a));
  EXPECT_DOUBLE_EQ(euclidean_distance(a, a), 0.0);
}

TEST(Distance, ManhattanSumsAxes) {
  EXPECT_DOUBLE_EQ(manhattan_distance({0, 0}, {3, 4}), 7.0);
  EXPECT_DOUBLE_EQ(manhattan_distance({2, 2}, {-1, 5}), 6.0);
}

TEST(Distance, ManhattanDominatesEuclidean) {
  const Point a{1, 1}, b{4, 5};
  EXPECT_GE(manhattan_distance(a, b), euclidean_distance(a, b));
}

TEST(Distance, SquaredMatchesSquare) {
  const Point a{0, 0}, b{3, 4};
  EXPECT_DOUBLE_EQ(squared_distance(a, b), 25.0);
}

TEST(Lerp, EndpointsAndMidpoint) {
  const Point a{0, 0}, b{10, -20};
  EXPECT_EQ(lerp(a, b, 0.0), a);
  EXPECT_EQ(lerp(a, b, 1.0), b);
  EXPECT_EQ(lerp(a, b, 0.5), (Point{5, -10}));
}

TEST(AdvanceToward, PartialStepMovesAlongTheSegment) {
  const Point from{0, 0}, to{10, 0};
  const Point moved = advance_toward(from, to, 4.0);
  EXPECT_DOUBLE_EQ(moved.x, 4.0);
  EXPECT_DOUBLE_EQ(moved.y, 0.0);
}

TEST(AdvanceToward, OvershootSnapsToTarget) {
  EXPECT_EQ(advance_toward({0, 0}, {1, 1}, 100.0), (Point{1, 1}));
}

TEST(AdvanceToward, ZeroDistanceStaysPut) {
  EXPECT_EQ(advance_toward({2, 2}, {2, 2}, 1.0), (Point{2, 2}));
}

TEST(Rect, DimensionsAndCenter) {
  const Rect r{{-2, -4}, {6, 8}};
  EXPECT_DOUBLE_EQ(r.width(), 8.0);
  EXPECT_DOUBLE_EQ(r.height(), 12.0);
  EXPECT_EQ(r.center(), (Point{2, 2}));
}

TEST(Rect, ContainsIsInclusiveOfEdges) {
  const Rect r{{0, 0}, {1, 1}};
  EXPECT_TRUE(r.contains({0, 0}));
  EXPECT_TRUE(r.contains({1, 1}));
  EXPECT_TRUE(r.contains({0.5, 0.5}));
  EXPECT_FALSE(r.contains({1.0001, 0.5}));
  EXPECT_FALSE(r.contains({0.5, -0.0001}));
}

TEST(Rect, ClampProjectsOntoTheRectangle) {
  const Rect r{{0, 0}, {10, 10}};
  EXPECT_EQ(r.clamp({-5, 5}), (Point{0, 5}));
  EXPECT_EQ(r.clamp({12, 15}), (Point{10, 10}));
  EXPECT_EQ(r.clamp({3, 4}), (Point{3, 4}));
}

}  // namespace
}  // namespace o2o::geo
