#include "index/spatial_grid.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/rng.h"

namespace o2o::index {
namespace {

geo::Rect bounds() { return geo::Rect{{0, 0}, {20, 20}}; }

TEST(SpatialGrid, InsertLookupRemove) {
  SpatialGrid grid(bounds(), 1.0);
  grid.upsert(1, {5, 5});
  EXPECT_TRUE(grid.contains(1));
  EXPECT_EQ(grid.size(), 1u);
  EXPECT_EQ(grid.position(1)->x, 5.0);
  grid.remove(1);
  EXPECT_FALSE(grid.contains(1));
  EXPECT_EQ(grid.size(), 0u);
  EXPECT_FALSE(grid.position(1).has_value());
}

TEST(SpatialGrid, RemoveMissingIsNoOp) {
  SpatialGrid grid(bounds(), 1.0);
  grid.remove(42);
  EXPECT_EQ(grid.size(), 0u);
}

TEST(SpatialGrid, UpsertMovesAcrossCells) {
  SpatialGrid grid(bounds(), 1.0);
  grid.upsert(7, {1, 1});
  grid.upsert(7, {18, 18});
  EXPECT_EQ(grid.size(), 1u);
  const auto found = grid.nearest({19, 19});
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, 7);
  EXPECT_TRUE(grid.within_radius({1, 1}, 2.0).empty());
}

TEST(SpatialGrid, NearestOnEmptyIsNull) {
  SpatialGrid grid(bounds(), 1.0);
  EXPECT_FALSE(grid.nearest({3, 3}).has_value());
}

TEST(SpatialGrid, NearestHonoursAcceptFilter) {
  SpatialGrid grid(bounds(), 1.0);
  grid.upsert(1, {5, 5});
  grid.upsert(2, {10, 10});
  const auto found =
      grid.nearest({5, 5}, [](std::int32_t id) { return id != 1; });
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, 2);
}

TEST(SpatialGrid, ObjectsOutsideBoundsAreStillFindable) {
  SpatialGrid grid(bounds(), 1.0);
  grid.upsert(9, {-50, -50});  // clamped into an edge cell
  const auto found = grid.nearest({0, 0});
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, 9);
}

TEST(SpatialGrid, KNearestIsSortedByDistance) {
  SpatialGrid grid(bounds(), 1.0);
  grid.upsert(1, {1, 0});
  grid.upsert(2, {4, 0});
  grid.upsert(3, {2, 0});
  const auto three = grid.k_nearest({0, 0}, 3);
  EXPECT_EQ(three, (std::vector<std::int32_t>{1, 3, 2}));
  const auto two = grid.k_nearest({0, 0}, 2);
  EXPECT_EQ(two, (std::vector<std::int32_t>{1, 3}));
}

TEST(SpatialGrid, WithinRadiusBoundary) {
  SpatialGrid grid(bounds(), 1.0);
  grid.upsert(1, {3, 0});
  grid.upsert(2, {3.1, 0});
  auto hits = grid.within_radius({0, 0}, 3.0);
  EXPECT_EQ(hits, (std::vector<std::int32_t>{1}));
}

class SpatialGridRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SpatialGridRandom, MatchesBruteForceQueries) {
  Rng rng(GetParam());
  SpatialGrid grid(bounds(), 0.8);
  std::vector<std::pair<std::int32_t, geo::Point>> objects;
  for (std::int32_t id = 0; id < 60; ++id) {
    const geo::Point p{rng.uniform(0, 20), rng.uniform(0, 20)};
    grid.upsert(id, p);
    objects.emplace_back(id, p);
  }
  for (int q = 0; q < 50; ++q) {
    const geo::Point p{rng.uniform(-2, 22), rng.uniform(-2, 22)};

    // nearest
    const auto fast = grid.nearest(p);
    auto slow = std::min_element(objects.begin(), objects.end(),
                                 [&](const auto& a, const auto& b) {
                                   return geo::squared_distance(p, a.second) <
                                          geo::squared_distance(p, b.second);
                                 });
    ASSERT_TRUE(fast.has_value());
    EXPECT_DOUBLE_EQ(geo::squared_distance(p, grid.position(*fast).value()),
                     geo::squared_distance(p, slow->second));

    // k-nearest distances
    const std::size_t k = 1 + q % 7;
    const auto k_fast = grid.k_nearest(p, k);
    std::vector<double> expected;
    for (const auto& [id, pos] : objects) {
      expected.push_back(geo::squared_distance(p, pos));
    }
    std::sort(expected.begin(), expected.end());
    ASSERT_EQ(k_fast.size(), std::min(k, objects.size()));
    for (std::size_t i = 0; i < k_fast.size(); ++i) {
      EXPECT_NEAR(geo::squared_distance(p, grid.position(k_fast[i]).value()),
                  expected[i], 1e-9);
    }

    // radius
    const double radius = rng.uniform(0.5, 8.0);
    auto in_radius = grid.within_radius(p, radius);
    std::sort(in_radius.begin(), in_radius.end());
    std::vector<std::int32_t> expected_ids;
    for (const auto& [id, pos] : objects) {
      if (geo::euclidean_distance(p, pos) <= radius) expected_ids.push_back(id);
    }
    EXPECT_EQ(in_radius, expected_ids);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpatialGridRandom, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace o2o::index
