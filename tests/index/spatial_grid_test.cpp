#include "index/spatial_grid.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/rng.h"

namespace o2o::index {
namespace {

geo::Rect bounds() { return geo::Rect{{0, 0}, {20, 20}}; }

TEST(SpatialGrid, InsertLookupRemove) {
  SpatialGrid grid(bounds(), 1.0);
  grid.upsert(1, {5, 5});
  EXPECT_TRUE(grid.contains(1));
  EXPECT_EQ(grid.size(), 1u);
  EXPECT_EQ(grid.position(1)->x, 5.0);
  grid.remove(1);
  EXPECT_FALSE(grid.contains(1));
  EXPECT_EQ(grid.size(), 0u);
  EXPECT_FALSE(grid.position(1).has_value());
}

TEST(SpatialGrid, RemoveMissingIsNoOp) {
  SpatialGrid grid(bounds(), 1.0);
  grid.remove(42);
  EXPECT_EQ(grid.size(), 0u);
}

TEST(SpatialGrid, UpsertMovesAcrossCells) {
  SpatialGrid grid(bounds(), 1.0);
  grid.upsert(7, {1, 1});
  grid.upsert(7, {18, 18});
  EXPECT_EQ(grid.size(), 1u);
  const auto found = grid.nearest({19, 19});
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, 7);
  EXPECT_TRUE(grid.within_radius({1, 1}, 2.0).empty());
}

TEST(SpatialGrid, NearestOnEmptyIsNull) {
  SpatialGrid grid(bounds(), 1.0);
  EXPECT_FALSE(grid.nearest({3, 3}).has_value());
}

TEST(SpatialGrid, NearestHonoursAcceptFilter) {
  SpatialGrid grid(bounds(), 1.0);
  grid.upsert(1, {5, 5});
  grid.upsert(2, {10, 10});
  const auto found =
      grid.nearest({5, 5}, [](std::int32_t id) { return id != 1; });
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, 2);
}

TEST(SpatialGrid, ObjectsOutsideBoundsAreStillFindable) {
  SpatialGrid grid(bounds(), 1.0);
  grid.upsert(9, {-50, -50});  // clamped into an edge cell
  const auto found = grid.nearest({0, 0});
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, 9);
}

TEST(SpatialGrid, KNearestIsSortedByDistance) {
  SpatialGrid grid(bounds(), 1.0);
  grid.upsert(1, {1, 0});
  grid.upsert(2, {4, 0});
  grid.upsert(3, {2, 0});
  const auto three = grid.k_nearest({0, 0}, 3);
  EXPECT_EQ(three, (std::vector<std::int32_t>{1, 3, 2}));
  const auto two = grid.k_nearest({0, 0}, 2);
  EXPECT_EQ(two, (std::vector<std::int32_t>{1, 3}));
}

TEST(SpatialGrid, WithinRadiusBoundary) {
  SpatialGrid grid(bounds(), 1.0);
  grid.upsert(1, {3, 0});
  grid.upsert(2, {3.1, 0});
  auto hits = grid.within_radius({0, 0}, 3.0);
  EXPECT_EQ(hits, (std::vector<std::int32_t>{1}));
}

class SpatialGridRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SpatialGridRandom, MatchesBruteForceQueries) {
  Rng rng(GetParam());
  SpatialGrid grid(bounds(), 0.8);
  std::vector<std::pair<std::int32_t, geo::Point>> objects;
  for (std::int32_t id = 0; id < 60; ++id) {
    const geo::Point p{rng.uniform(0, 20), rng.uniform(0, 20)};
    grid.upsert(id, p);
    objects.emplace_back(id, p);
  }
  for (int q = 0; q < 50; ++q) {
    const geo::Point p{rng.uniform(-2, 22), rng.uniform(-2, 22)};

    // nearest
    const auto fast = grid.nearest(p);
    auto slow = std::min_element(objects.begin(), objects.end(),
                                 [&](const auto& a, const auto& b) {
                                   return geo::squared_distance(p, a.second) <
                                          geo::squared_distance(p, b.second);
                                 });
    ASSERT_TRUE(fast.has_value());
    EXPECT_DOUBLE_EQ(geo::squared_distance(p, grid.position(*fast).value()),
                     geo::squared_distance(p, slow->second));

    // k-nearest distances
    const std::size_t k = 1 + q % 7;
    const auto k_fast = grid.k_nearest(p, k);
    std::vector<double> expected;
    for (const auto& [id, pos] : objects) {
      expected.push_back(geo::squared_distance(p, pos));
    }
    std::sort(expected.begin(), expected.end());
    ASSERT_EQ(k_fast.size(), std::min(k, objects.size()));
    for (std::size_t i = 0; i < k_fast.size(); ++i) {
      EXPECT_NEAR(geo::squared_distance(p, grid.position(k_fast[i]).value()),
                  expected[i], 1e-9);
    }

    // radius
    const double radius = rng.uniform(0.5, 8.0);
    auto in_radius = grid.within_radius(p, radius);
    std::sort(in_radius.begin(), in_radius.end());
    std::vector<std::int32_t> expected_ids;
    for (const auto& [id, pos] : objects) {
      if (geo::euclidean_distance(p, pos) <= radius) expected_ids.push_back(id);
    }
    EXPECT_EQ(in_radius, expected_ids);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpatialGridRandom, ::testing::Values(1, 2, 3, 4, 5));

TEST(SpatialGridBulk, KeysBySpanIndexNotTaxiId) {
  // Taxi ids are deliberately non-contiguous; the bulk constructor keys
  // entries by position in the span so dispatch code can index straight
  // back into its frame-local vectors.
  std::vector<trace::Taxi> taxis{{100, {2.0, 3.0}, 4},
                                 {7, {15.0, 15.0}, 4},
                                 {42, {2.5, 3.5}, 2}};
  const SpatialGrid grid(std::span<const trace::Taxi>(taxis), 1.0);
  EXPECT_EQ(grid.size(), taxis.size());
  for (std::size_t i = 0; i < taxis.size(); ++i) {
    const auto pos = grid.position(static_cast<std::int32_t>(i));
    ASSERT_TRUE(pos.has_value()) << "span index " << i;
    EXPECT_EQ(pos->x, taxis[i].location.x);
    EXPECT_EQ(pos->y, taxis[i].location.y);
  }
  EXPECT_FALSE(grid.contains(100));

  auto near_origin = grid.within_radius({2.0, 3.0}, 1.0);
  std::sort(near_origin.begin(), near_origin.end());
  EXPECT_EQ(near_origin, (std::vector<std::int32_t>{0, 2}));
}

TEST(SpatialGridBulk, MatchesIncrementalConstructionOnRandomFleets) {
  Rng rng(99);
  std::vector<trace::Taxi> taxis;
  for (int t = 0; t < 60; ++t) {
    taxis.push_back({t, {rng.uniform(-5, 25), rng.uniform(-5, 25)}, 4});
  }
  const SpatialGrid bulk(std::span<const trace::Taxi>(taxis), 1.5);
  SpatialGrid incremental(bounds(), 1.5);
  for (std::size_t i = 0; i < taxis.size(); ++i) {
    incremental.upsert(static_cast<std::int32_t>(i), taxis[i].location);
  }
  for (int probe = 0; probe < 40; ++probe) {
    const geo::Point p{rng.uniform(-8, 28), rng.uniform(-8, 28)};
    const double radius = rng.uniform(0.5, 10.0);
    auto a = bulk.within_radius(p, radius);
    auto b = incremental.within_radius(p, radius);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b) << "probe " << probe;
  }
}

TEST(SpatialGridBulk, EmptySpanYieldsAValidEmptyGrid) {
  const std::vector<trace::Taxi> none;
  const SpatialGrid grid(std::span<const trace::Taxi>(none), 2.0);
  EXPECT_EQ(grid.size(), 0u);
  EXPECT_FALSE(grid.nearest({0.5, 0.5}).has_value());
  EXPECT_TRUE(grid.within_radius({0.5, 0.5}, 100.0).empty());
}

TEST(SpatialGridDelta, MultiFrameChurnSoakMatchesFreshGrids) {
  // The incremental-frame engine's contract: a grid patched with
  // insert/remove/move across many frames answers within_radius_into
  // identically (same ids, same order) to a grid freshly bulk-built over
  // the same membership, including across auto-compactions.
  Rng rng(77);
  std::unordered_map<std::int32_t, geo::Point> live;
  SpatialGrid patched(geo::Rect{{0.0, 0.0}, {20.0, 20.0}}, 1.0);
  std::int32_t next_id = 0;
  const auto random_point = [&] {
    return geo::Point{rng.uniform(-10.0, 40.0), rng.uniform(-10.0, 40.0)};
  };
  for (int i = 0; i < 40; ++i) {
    const geo::Point p = random_point();
    live.emplace(next_id, p);
    patched.insert(next_id, p);
    ++next_id;
  }
  std::size_t compactions_crossed = 0;
  for (int frame = 0; frame < 30; ++frame) {
    // Churn: ~20% departures, ~20% arrivals, ~30% of survivors drift.
    for (auto it = live.begin(); it != live.end();) {
      if (rng.uniform(0.0, 1.0) < 0.2) {
        patched.remove(it->first);
        it = live.erase(it);
      } else {
        ++it;
      }
    }
    for (int added = 0; added < 8; ++added) {
      const geo::Point p = random_point();
      live.emplace(next_id, p);
      patched.insert(next_id, p);
      ++next_id;
    }
    const std::size_t before = patched.mutations_since_compact();
    for (auto& [id, p] : live) {
      if (rng.uniform(0.0, 1.0) < 0.3) {
        p = random_point();
        patched.move(id, p);
      }
    }
    if (patched.mutations_since_compact() < before) ++compactions_crossed;

    // Fresh reference over the identical membership, sorted-by-id input
    // so both grids share the bucket-order invariant.
    std::vector<std::pair<std::int32_t, geo::Point>> sorted(live.begin(), live.end());
    std::sort(sorted.begin(), sorted.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    std::vector<std::int32_t> ids;
    std::vector<geo::Point> points;
    for (const auto& [id, p] : sorted) {
      ids.push_back(id);
      points.push_back(p);
    }
    const SpatialGrid fresh(ids, points, 1.0);
    ASSERT_EQ(patched.size(), fresh.size());
    std::vector<std::int32_t> a;
    std::vector<std::int32_t> b;
    for (int probe = 0; probe < 25; ++probe) {
      const geo::Point p = random_point();
      const double radius = rng.uniform(0.5, 12.0);
      a.clear();
      b.clear();
      patched.within_radius_into(p, radius, a);
      fresh.within_radius_into(p, radius, b);
      // The exact squared-distance predicate makes the *sets* equal; the
      // sorted-bucket invariant is what makes the raw order equal too.
      std::sort(a.begin(), a.end());
      std::sort(b.begin(), b.end());
      EXPECT_EQ(a, b) << "frame " << frame << " probe " << probe;
    }
  }
  // The soak is only meaningful if the auto-compaction actually fired.
  EXPECT_GT(compactions_crossed, 0u);
}

TEST(SpatialGridDelta, ExplicitCompactPreservesAnswers) {
  Rng rng(81);
  SpatialGrid grid(geo::Rect{{0.0, 0.0}, {10.0, 10.0}}, 1.0);
  for (std::int32_t id = 0; id < 50; ++id) {
    grid.insert(id, {rng.uniform(-20.0, 30.0), rng.uniform(-20.0, 30.0)});
  }
  // Drift everything far outside the original bounds, then compact.
  for (std::int32_t id = 0; id < 50; ++id) {
    if (id % 2 == 0) grid.move(id, {rng.uniform(100.0, 140.0), rng.uniform(100.0, 140.0)});
  }
  auto before = grid.within_radius({120.0, 120.0}, 30.0);
  grid.compact();
  EXPECT_EQ(grid.mutations_since_compact(), 0u);
  auto after = grid.within_radius({120.0, 120.0}, 30.0);
  // Membership is exact either way; only the cell-traversal order (and
  // with it the raw emission order) changes when compaction re-bins.
  std::sort(before.begin(), before.end());
  std::sort(after.begin(), after.end());
  EXPECT_EQ(before, after);
  EXPECT_FALSE(before.empty());
}

TEST(SpatialGridBulk, QueriesFarOutsideThePaddedBoundsStillWork) {
  std::vector<trace::Taxi> taxis{{0, {0.0, 0.0}, 4}, {1, {1.0, 0.0}, 4}};
  const SpatialGrid grid(std::span<const trace::Taxi>(taxis), 1.0);
  // A query point hundreds of km outside the fleet's bounding box must
  // clamp, not crash, and still honour the radius test exactly.
  EXPECT_TRUE(grid.within_radius({500.0, 500.0}, 10.0).empty());
  auto all = grid.within_radius({500.0, 500.0}, 1000.0);
  std::sort(all.begin(), all.end());
  EXPECT_EQ(all, (std::vector<std::int32_t>{0, 1}));
}

}  // namespace
}  // namespace o2o::index
