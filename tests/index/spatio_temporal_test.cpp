#include "index/spatio_temporal.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/contracts.h"

namespace o2o::index {
namespace {

geo::Rect bounds() { return geo::Rect{{0, 0}, {10, 10}}; }

TEST(SpatioTemporal, InsertAndQuerySameSlot) {
  SpatioTemporalIndex index(bounds(), 1.0, 60.0, 10);
  index.insert(1, {5, 5}, 30.0);
  const auto hits = index.query({5, 5}, 1.0, 0.0, 59.0);
  EXPECT_EQ(hits, (std::vector<std::int32_t>{1}));
}

TEST(SpatioTemporal, QueryOutsideTimeWindowMisses) {
  SpatioTemporalIndex index(bounds(), 1.0, 60.0, 10);
  index.insert(1, {5, 5}, 30.0);
  EXPECT_TRUE(index.query({5, 5}, 1.0, 60.0, 119.0).empty());
}

TEST(SpatioTemporal, QueryOutsideRadiusMisses) {
  SpatioTemporalIndex index(bounds(), 1.0, 60.0, 10);
  index.insert(1, {5, 5}, 30.0);
  EXPECT_TRUE(index.query({9, 9}, 1.0, 0.0, 59.0).empty());
}

TEST(SpatioTemporal, InsertBeyondHorizonIsDropped) {
  SpatioTemporalIndex index(bounds(), 1.0, 60.0, 5);
  index.insert(1, {5, 5}, 60.0 * 20);  // far future
  EXPECT_TRUE(index.query({5, 5}, 1.0, 0.0, 60.0 * 30).empty());
}

TEST(SpatioTemporal, DuplicateIdsAcrossSlotsAreDeduplicated) {
  SpatioTemporalIndex index(bounds(), 1.0, 60.0, 10);
  index.insert(1, {5, 5}, 30.0);
  index.insert(1, {5, 6}, 90.0);
  const auto hits = index.query({5, 5}, 3.0, 0.0, 119.0);
  EXPECT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits.front(), 1);
}

TEST(SpatioTemporal, AdvanceRecyclesOldSlots) {
  SpatioTemporalIndex index(bounds(), 1.0, 60.0, 4);
  index.insert(1, {5, 5}, 30.0);
  index.advance(60.0 * 6);  // window moves past the insertion
  EXPECT_TRUE(index.query({5, 5}, 1.0, 0.0, 60.0 * 10).empty());
  // New insertions at the new window work.
  index.insert(2, {3, 3}, 60.0 * 6 + 10.0);
  const auto hits = index.query({3, 3}, 1.0, 60.0 * 6, 60.0 * 7);
  EXPECT_EQ(hits, (std::vector<std::int32_t>{2}));
}

TEST(SpatioTemporal, RemoveErasesAllRegistrations) {
  SpatioTemporalIndex index(bounds(), 1.0, 60.0, 10);
  index.insert(1, {5, 5}, 30.0);
  index.insert(1, {6, 5}, 90.0);
  index.remove(1);
  EXPECT_TRUE(index.query({5, 5}, 3.0, 0.0, 120.0).empty());
}

TEST(SpatioTemporal, MultipleTaxisInWindow) {
  SpatioTemporalIndex index(bounds(), 1.0, 60.0, 10);
  index.insert(1, {2, 2}, 10.0);
  index.insert(2, {2.5, 2.0}, 70.0);
  index.insert(3, {9, 9}, 10.0);
  auto hits = index.query({2, 2}, 1.0, 0.0, 119.0);
  std::sort(hits.begin(), hits.end());
  EXPECT_EQ(hits, (std::vector<std::int32_t>{1, 2}));
}

TEST(SpatioTemporal, InvalidQueryWindowThrows) {
  SpatioTemporalIndex index(bounds(), 1.0, 60.0, 10);
  EXPECT_THROW(index.query({0, 0}, 1.0, 100.0, 50.0), ContractViolation);
}

}  // namespace
}  // namespace o2o::index
