#include "trace/csv_trace.h"

#include <gtest/gtest.h>

#include <sstream>

namespace o2o::trace {
namespace {

TEST(ParseDatetime, EpochAndKnownTimestamps) {
  EXPECT_DOUBLE_EQ(parse_datetime_utc("1970-01-01 00:00:00").value(), 0.0);
  EXPECT_DOUBLE_EQ(parse_datetime_utc("1970-01-02 00:00:00").value(), 86400.0);
  // 2016-01-01T00:00:00Z == 1451606400 (the paper's NY trace month).
  EXPECT_DOUBLE_EQ(parse_datetime_utc("2016-01-01 00:00:00").value(), 1451606400.0);
  // Leap-year day.
  EXPECT_DOUBLE_EQ(parse_datetime_utc("2016-03-01 00:00:00").value(),
                   1451606400.0 + 60.0 * 86400.0);
}

TEST(ParseDatetime, AcceptsTSeparatorAndWhitespace) {
  EXPECT_TRUE(parse_datetime_utc("2016-01-01T12:30:45").has_value());
  EXPECT_DOUBLE_EQ(parse_datetime_utc(" 2016-01-01 12:30:45 ").value(),
                   1451606400.0 + 12 * 3600 + 30 * 60 + 45);
}

TEST(ParseDatetime, RejectsMalformedInput) {
  EXPECT_FALSE(parse_datetime_utc("").has_value());
  EXPECT_FALSE(parse_datetime_utc("not a date").has_value());
  EXPECT_FALSE(parse_datetime_utc("2016-13-01 00:00:00").has_value());
  EXPECT_FALSE(parse_datetime_utc("2016-01-40 00:00:00").has_value());
  EXPECT_FALSE(parse_datetime_utc("2016-01-01 25:00:00").has_value());
  EXPECT_FALSE(parse_datetime_utc("2016-01-01").has_value());
}

constexpr const char* kTlcCsv =
    "tpep_pickup_datetime,pickup_longitude,pickup_latitude,"
    "dropoff_longitude,dropoff_latitude,passenger_count\n"
    "2016-01-01 00:05:00,-73.98,40.75,-73.95,40.78,1\n"
    "2016-01-01 00:00:00,-73.99,40.74,-73.97,40.76,2\n"
    "2016-01-01 00:10:00,0,0,-73.95,40.78,1\n"  // GPS dropout: skipped
    "2016-01-01 00:15:00,bad,40.75,-73.95,40.78,1\n";  // malformed: skipped

TEST(LoadLatLonCsv, ParsesTheTlcSchema) {
  std::istringstream in(kTlcCsv);
  const Trace trace = load_latlon_csv(in, CsvSchema::nyc_tlc());
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace.name(), "new-york-tlc");
  // Times re-based to the earliest request and sorted.
  EXPECT_DOUBLE_EQ(trace.requests()[0].time_seconds, 0.0);
  EXPECT_DOUBLE_EQ(trace.requests()[1].time_seconds, 300.0);
  EXPECT_EQ(trace.requests()[0].seats, 2);
  EXPECT_EQ(trace.requests()[1].seats, 1);
}

TEST(LoadLatLonCsv, ProjectsToPlausibleKilometreScale) {
  std::istringstream in(kTlcCsv);
  const Trace trace = load_latlon_csv(in, CsvSchema::nyc_tlc());
  // ~0.01 degrees lat ~ 1.1 km; all coordinates within a few km of the
  // mean pick-up.
  for (const Request& r : trace.requests()) {
    EXPECT_LT(std::abs(r.pickup.x), 10.0);
    EXPECT_LT(std::abs(r.pickup.y), 10.0);
    EXPECT_GT(geo::euclidean_distance(r.pickup, r.dropoff), 1.0);
  }
}

TEST(LoadLatLonCsv, EmptyFileYieldsEmptyTrace) {
  std::istringstream in(
      "tpep_pickup_datetime,pickup_longitude,pickup_latitude,"
      "dropoff_longitude,dropoff_latitude,passenger_count\n");
  EXPECT_TRUE(load_latlon_csv(in, CsvSchema::nyc_tlc()).empty());
}

TEST(LoadLatLonCsv, BostonSchemaHasNoSeatsColumn) {
  std::istringstream in(
      "TRIP_START,START_LAT,START_LON,END_LAT,END_LON\n"
      "2012-09-01 08:00:00,42.36,-71.06,42.37,-71.10\n");
  const Trace trace = load_latlon_csv(in, CsvSchema::boston());
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace.requests()[0].seats, 1);
}

TEST(CanonicalCsv, RoundTripsATrace) {
  std::vector<Request> requests;
  for (int i = 0; i < 5; ++i) {
    Request r;
    r.time_seconds = i * 60.0;
    r.pickup = {1.25 * i, -0.5 * i};
    r.dropoff = {1.25 * i + 2.0, -0.5 * i + 1.0};
    r.seats = 1 + i % 3;
    requests.push_back(r);
  }
  const Trace original("round-trip", geo::Rect{{-10, -10}, {10, 10}}, requests);

  std::ostringstream out;
  save_canonical_csv(out, original);
  std::istringstream in(out.str());
  const Trace loaded = load_canonical_csv(in, "round-trip");

  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_NEAR(loaded.requests()[i].time_seconds, original.requests()[i].time_seconds,
                1e-3);
    EXPECT_NEAR(loaded.requests()[i].pickup.x, original.requests()[i].pickup.x, 1e-6);
    EXPECT_NEAR(loaded.requests()[i].dropoff.y, original.requests()[i].dropoff.y, 1e-6);
    EXPECT_EQ(loaded.requests()[i].seats, original.requests()[i].seats);
  }
}

TEST(CanonicalCsv, RegionIsRecomputedFromData) {
  std::istringstream in(
      "time_seconds,pickup_x_km,pickup_y_km,dropoff_x_km,dropoff_y_km,seats\n"
      "0,-3,-4,5,6,1\n");
  const Trace trace = load_canonical_csv(in, "r");
  EXPECT_DOUBLE_EQ(trace.region().lo.x, -3.0);
  EXPECT_DOUBLE_EQ(trace.region().hi.y, 6.0);
}

}  // namespace
}  // namespace o2o::trace
