#include "trace/fleet.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/contracts.h"

namespace o2o::trace {
namespace {

const geo::Rect kRegion{{-10, -10}, {10, 10}};

TEST(Fleet, CountSeatsAndIds) {
  FleetOptions options;
  options.taxi_count = 25;
  options.seats = 6;
  const auto fleet = make_fleet(kRegion, options);
  ASSERT_EQ(fleet.size(), 25u);
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    EXPECT_EQ(fleet[i].id, static_cast<TaxiId>(i));
    EXPECT_EQ(fleet[i].seats, 6);
  }
}

TEST(Fleet, AllTaxisInsideTheRegion) {
  FleetOptions options;
  options.taxi_count = 200;
  options.sigma_fraction = 2.0;  // wide spread forces clamping
  for (const Taxi& taxi : make_fleet(kRegion, options)) {
    EXPECT_TRUE(kRegion.contains(taxi.location));
  }
}

TEST(Fleet, DeterministicBySeed) {
  FleetOptions options;
  options.taxi_count = 30;
  const auto a = make_fleet(kRegion, options);
  const auto b = make_fleet(kRegion, options);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].location, b[i].location);
  options.seed = 99;
  const auto c = make_fleet(kRegion, options);
  EXPECT_NE(a[0].location, c[0].location);
}

TEST(Fleet, ConcentratedAroundTheCenter) {
  FleetOptions options;
  options.taxi_count = 500;
  options.sigma_fraction = 0.25;  // sigma = 2.5 km on a 10 km half-extent
  std::size_t inside_one_sigma_box = 0;
  for (const Taxi& taxi : make_fleet(kRegion, options)) {
    if (std::abs(taxi.location.x) <= 2.5 && std::abs(taxi.location.y) <= 2.5) {
      ++inside_one_sigma_box;
    }
  }
  // P(|X|<sigma)^2 ~ 0.466; allow generous slack.
  EXPECT_GT(inside_one_sigma_box, 150u);
  EXPECT_LT(inside_one_sigma_box, 350u);
}

TEST(Fleet, ZeroTaxisIsFine) {
  FleetOptions options;
  options.taxi_count = 0;
  EXPECT_TRUE(make_fleet(kRegion, options).empty());
}

TEST(Fleet, InvalidOptionsThrow) {
  FleetOptions options;
  options.taxi_count = -1;
  EXPECT_THROW(make_fleet(kRegion, options), o2o::ContractViolation);
  options.taxi_count = 1;
  options.seats = 0;
  EXPECT_THROW(make_fleet(kRegion, options), o2o::ContractViolation);
}

}  // namespace
}  // namespace o2o::trace
