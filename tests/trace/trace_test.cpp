#include "trace/trace.h"

#include <gtest/gtest.h>

namespace o2o::trace {
namespace {

Request at(double t, geo::Point pickup = {0, 0}, geo::Point dropoff = {1, 1}) {
  Request request;
  request.time_seconds = t;
  request.pickup = pickup;
  request.dropoff = dropoff;
  return request;
}

const geo::Rect kRegion{{0, 0}, {10, 10}};

TEST(Trace, SortsByTimeAndReindexes) {
  const Trace trace("test", kRegion, {at(30), at(10), at(20)});
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_DOUBLE_EQ(trace.requests()[0].time_seconds, 10.0);
  EXPECT_DOUBLE_EQ(trace.requests()[2].time_seconds, 30.0);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(trace.requests()[i].id, static_cast<RequestId>(i));
  }
}

TEST(Trace, SortIsStableForEqualTimes) {
  Request a = at(5, {1, 0});
  Request b = at(5, {2, 0});
  const Trace trace("test", kRegion, {a, b});
  EXPECT_DOUBLE_EQ(trace.requests()[0].pickup.x, 1.0);
  EXPECT_DOUBLE_EQ(trace.requests()[1].pickup.x, 2.0);
}

TEST(Trace, DurationIsLastRequestTime) {
  const Trace trace("test", kRegion, {at(10), at(250)});
  EXPECT_DOUBLE_EQ(trace.duration_seconds(), 250.0);
  EXPECT_DOUBLE_EQ(Trace().duration_seconds(), 0.0);
}

TEST(Trace, SliceRebasesTimes) {
  const Trace trace("test", kRegion, {at(10), at(110), at(210), at(310)});
  const Trace slice = trace.slice(100.0, 300.0);
  ASSERT_EQ(slice.size(), 2u);
  EXPECT_DOUBLE_EQ(slice.requests()[0].time_seconds, 10.0);
  EXPECT_DOUBLE_EQ(slice.requests()[1].time_seconds, 110.0);
  EXPECT_EQ(slice.name(), "test");
}

TEST(Trace, SliceBoundsAreHalfOpen) {
  const Trace trace("test", kRegion, {at(100), at(200)});
  EXPECT_EQ(trace.slice(100.0, 200.0).size(), 1u);
  EXPECT_EQ(trace.slice(0.0, 100.0).size(), 0u);
}

TEST(Trace, SampleEveryKeepsEveryKth) {
  const Trace trace("test", kRegion, {at(0), at(1), at(2), at(3), at(4)});
  const Trace thinned = trace.sample_every(2);
  ASSERT_EQ(thinned.size(), 3u);
  EXPECT_DOUBLE_EQ(thinned.requests()[1].time_seconds, 2.0);
  EXPECT_EQ(trace.sample_every(1).size(), trace.size());
}

TEST(Trace, MeanRatePerHour) {
  // 10 requests over 3600 seconds -> ~10/hour (duration = last arrival).
  std::vector<Request> requests;
  for (int i = 1; i <= 10; ++i) requests.push_back(at(i * 360.0));
  const Trace trace("test", kRegion, std::move(requests));
  EXPECT_NEAR(trace.mean_rate_per_hour(), 10.0, 1e-9);
  EXPECT_DOUBLE_EQ(Trace().mean_rate_per_hour(), 0.0);
}

TEST(Trace, EmptyBehaviour) {
  const Trace trace;
  EXPECT_TRUE(trace.empty());
  EXPECT_EQ(trace.slice(0, 100).size(), 0u);
}

}  // namespace
}  // namespace o2o::trace
