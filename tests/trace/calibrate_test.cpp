#include "trace/calibrate.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "geo/distance_oracle.h"
#include "util/contracts.h"

namespace o2o::trace {
namespace {

Trace generated_boston(std::uint64_t seed, double hours = 24.0) {
  GenerationOptions options;
  options.duration_seconds = hours * 3600.0;
  options.seed = seed;
  return generate(CityModel::boston(), options);
}

TEST(Calibrate, RecoversTheBaseRate) {
  const Trace trace = generated_boston(5);
  const CalibrationResult result = calibrate(trace);
  EXPECT_NEAR(result.model.base_rate_per_hour, CityModel::boston().base_rate_per_hour,
              CityModel::boston().base_rate_per_hour * 0.15);
}

TEST(Calibrate, RegionCoversTheTrace) {
  const Trace trace = generated_boston(6);
  const CalibrationResult result = calibrate(trace);
  for (const Request& request : trace.requests()) {
    EXPECT_TRUE(result.model.region.contains(request.pickup));
    EXPECT_TRUE(result.model.region.contains(request.dropoff));
  }
}

TEST(Calibrate, RecoversTripLengthDistribution) {
  const Trace trace = generated_boston(7);
  const CalibrationResult result = calibrate(trace);
  // Clamping to the region slightly shortens trips; allow tolerance.
  EXPECT_NEAR(result.model.trip_km_log_mean, CityModel::boston().trip_km_log_mean, 0.15);
  EXPECT_NEAR(result.model.trip_km_log_sigma, CityModel::boston().trip_km_log_sigma,
              0.15);
}

TEST(Calibrate, FindsTheDowntownHotspot) {
  const Trace trace = generated_boston(8);
  CalibrationOptions options;
  options.hotspots = 4;
  const CalibrationResult result = calibrate(trace, options);
  ASSERT_GE(result.model.hotspots.size(), 1u);
  // The heaviest cluster should sit near downtown (0, 0), where 8/13.5 of
  // the demand mass lives.
  const auto heaviest = std::max_element(
      result.model.hotspots.begin(), result.model.hotspots.end(),
      [](const Hotspot& a, const Hotspot& b) { return a.weight < b.weight; });
  EXPECT_LT(geo::euclidean_distance(heaviest->center, {0, 0}), 2.5);
}

TEST(Calibrate, HourlyProfileShowsCommutePeaks) {
  const Trace trace = generated_boston(9);
  const CalibrationResult result = calibrate(trace);
  ASSERT_EQ(result.hourly_multiplier.size(), 24u);
  EXPECT_GT(result.hourly_multiplier[9], 1.5 * result.hourly_multiplier[3]);
  EXPECT_GT(result.hourly_multiplier[18], 1.5 * result.hourly_multiplier[3]);
  // Normalized to mean ~1 over covered hours.
  double mean = 0.0;
  for (double m : result.hourly_multiplier) mean += m;
  EXPECT_NEAR(mean / 24.0, 1.0, 0.1);
}

TEST(Calibrate, RoundTripPreservesDispatchRelevantStatistics) {
  // generate -> calibrate -> re-generate: the re-generated trace should
  // look statistically like the original.
  const Trace original = generated_boston(10);
  const CalibrationResult calibrated = calibrate(original);
  GenerationOptions regen;
  regen.duration_seconds = 24.0 * 3600.0;
  regen.seed = 99;
  const Trace regenerated = generate(calibrated.model, regen);

  EXPECT_NEAR(static_cast<double>(regenerated.size()),
              static_cast<double>(original.size()), original.size() * 0.2);
  const geo::EuclideanOracle oracle;
  const auto mean_trip = [&](const Trace& t) {
    double sum = 0.0;
    for (const Request& r : t.requests()) sum += oracle.distance(r.pickup, r.dropoff);
    return sum / static_cast<double>(t.size());
  };
  EXPECT_NEAR(mean_trip(regenerated), mean_trip(original), mean_trip(original) * 0.2);
}

TEST(Calibrate, SingleHotspotDegenerate) {
  const Trace trace = generated_boston(11, 2.0);
  CalibrationOptions options;
  options.hotspots = 1;
  const CalibrationResult result = calibrate(trace, options);
  EXPECT_EQ(result.model.hotspots.size(), 1u);
  EXPECT_GT(result.model.hotspots[0].sigma_km, 0.05);
}

TEST(Calibrate, PreconditionsEnforced) {
  EXPECT_THROW(calibrate(Trace{}), o2o::ContractViolation);
  // Too-short trace.
  std::vector<Request> one;
  Request r;
  r.time_seconds = 60.0;
  one.push_back(r);
  const Trace tiny("tiny", geo::Rect{{0, 0}, {1, 1}}, one);
  EXPECT_THROW(calibrate(tiny), o2o::ContractViolation);
}

}  // namespace
}  // namespace o2o::trace
