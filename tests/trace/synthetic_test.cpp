#include "trace/synthetic.h"

#include <gtest/gtest.h>

#include <cmath>

#include "metrics/histogram.h"
#include "util/contracts.h"

namespace o2o::trace {
namespace {

GenerationOptions quick(std::uint64_t seed, double hours = 4.0) {
  GenerationOptions options;
  options.duration_seconds = hours * 3600.0;
  options.seed = seed;
  return options;
}

TEST(Diurnal, DayAverageIsAboutOne) {
  double sum = 0.0;
  const int samples = 24 * 60;
  for (int i = 0; i < samples; ++i) sum += diurnal_multiplier(24.0 * i / samples);
  EXPECT_NEAR(sum / samples, 1.0, 0.1);
}

TEST(Diurnal, CommutePeaksDominateTheNightTrough) {
  EXPECT_GT(diurnal_multiplier(9.0), 2.0 * diurnal_multiplier(3.0));
  EXPECT_GT(diurnal_multiplier(18.0), 2.0 * diurnal_multiplier(3.0));
  EXPECT_GT(diurnal_multiplier(18.0), diurnal_multiplier(13.0));
}

TEST(Diurnal, WrapsAroundMidnight) {
  EXPECT_NEAR(diurnal_multiplier(25.0), diurnal_multiplier(1.0), 1e-12);
  EXPECT_NEAR(diurnal_multiplier(-1.0), diurnal_multiplier(23.0), 1e-12);
}

TEST(Generate, DeterministicForAFixedSeed) {
  const CityModel model = CityModel::boston();
  const Trace a = generate(model, quick(5));
  const Trace b = generate(model, quick(5));
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.requests()[i].time_seconds, b.requests()[i].time_seconds);
    EXPECT_EQ(a.requests()[i].pickup, b.requests()[i].pickup);
  }
}

TEST(Generate, DifferentSeedsDiffer) {
  const CityModel model = CityModel::boston();
  const Trace a = generate(model, quick(5));
  const Trace b = generate(model, quick(6));
  EXPECT_NE(a.size(), 0u);
  // Sizes may coincide; first arrival almost surely differs.
  EXPECT_NE(a.requests()[0].pickup.x, b.requests()[0].pickup.x);
}

TEST(Generate, VolumeTracksTheBaseRate) {
  CityModel model = CityModel::boston();  // 560 / hour average
  GenerationOptions options = quick(7, 24.0);
  const Trace trace = generate(model, options);
  const double expected = model.base_rate_per_hour * 24.0;
  EXPECT_NEAR(static_cast<double>(trace.size()), expected, expected * 0.1);
}

TEST(Generate, RateScaleScalesVolume) {
  const CityModel model = CityModel::boston();
  GenerationOptions options = quick(8, 12.0);
  const std::size_t full = generate(model, options).size();
  options.rate_scale = 0.25;
  const std::size_t quarter = generate(model, options).size();
  EXPECT_NEAR(static_cast<double>(quarter), full * 0.25, full * 0.05);
}

TEST(Generate, AllPointsInsideTheRegion) {
  const CityModel model = CityModel::new_york();
  const Trace trace = generate(model, quick(9, 1.0));
  for (const Request& r : trace.requests()) {
    EXPECT_TRUE(model.region.contains(r.pickup));
    EXPECT_TRUE(model.region.contains(r.dropoff));
    EXPECT_GE(r.seats, 1);
  }
}

TEST(Generate, ArrivalsAreSortedAndIdsDense) {
  const Trace trace = generate(CityModel::boston(), quick(10, 2.0));
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_LE(trace.requests()[i - 1].time_seconds, trace.requests()[i].time_seconds);
    EXPECT_EQ(trace.requests()[i].id, static_cast<RequestId>(i));
  }
}

TEST(Generate, DiurnalShapeShowsRushHours) {
  CityModel model = CityModel::boston();
  GenerationOptions options = quick(11, 24.0);
  const Trace trace = generate(model, options);
  metrics::Histogram by_hour(0.0, 24.0, 24);
  for (const Request& r : trace.requests()) by_hour.add(r.time_seconds / 3600.0);
  // 9 am and 6 pm buckets each busier than 3 am by a wide margin.
  EXPECT_GT(by_hour.count(9), 2 * by_hour.count(3));
  EXPECT_GT(by_hour.count(18), 2 * by_hour.count(3));
}

TEST(Generate, DiurnalOffFlattensTheProfile) {
  CityModel model = CityModel::boston();
  GenerationOptions options = quick(12, 24.0);
  options.diurnal = false;
  const Trace trace = generate(model, options);
  metrics::Histogram by_hour(0.0, 24.0, 24);
  for (const Request& r : trace.requests()) by_hour.add(r.time_seconds / 3600.0);
  EXPECT_LT(by_hour.count(9), 2 * by_hour.count(3));
}

TEST(Generate, StartHourShiftsThePeaks) {
  CityModel model = CityModel::boston();
  GenerationOptions options = quick(13, 6.0);
  options.start_hour = 7.0;  // window covers the 9 am peak at t = 2 h
  const Trace trace = generate(model, options);
  metrics::Histogram by_hour(0.0, 6.0, 6);
  for (const Request& r : trace.requests()) by_hour.add(r.time_seconds / 3600.0);
  EXPECT_GT(by_hour.count(2), by_hour.count(5));
}

TEST(Generate, SeatMixRespectsMaxSeats) {
  CityModel model = CityModel::boston();
  GenerationOptions options = quick(14, 6.0);
  options.max_seats = 2;
  options.multi_seat_fraction = 0.5;
  const Trace trace = generate(model, options);
  std::size_t multi = 0;
  for (const Request& r : trace.requests()) {
    EXPECT_GE(r.seats, 1);
    EXPECT_LE(r.seats, 2);
    if (r.seats == 2) ++multi;
  }
  const double fraction = static_cast<double>(multi) / trace.size();
  EXPECT_NEAR(fraction, 0.5, 0.05);
}

TEST(Generate, NewYorkIsBusierAndBiggerThanBoston) {
  const CityModel ny = CityModel::new_york();
  const CityModel boston = CityModel::boston();
  EXPECT_GT(ny.base_rate_per_hour, boston.base_rate_per_hour);
  EXPECT_GT(ny.region.width() * ny.region.height(),
            4.0 * boston.region.width() * boston.region.height());
}

TEST(Generate, InvalidOptionsThrow) {
  const CityModel model = CityModel::boston();
  GenerationOptions bad = quick(15);
  bad.duration_seconds = 0.0;
  EXPECT_THROW(generate(model, bad), o2o::ContractViolation);
  CityModel empty = model;
  empty.hotspots.clear();
  EXPECT_THROW(generate(empty, quick(15)), o2o::ContractViolation);
}

}  // namespace
}  // namespace o2o::trace
