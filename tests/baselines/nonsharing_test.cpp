#include "baselines/nonsharing.h"

#include <gtest/gtest.h>

#include "matching/cost_matrix.h"
#include "sim/dispatcher.h"

namespace o2o::baselines {
namespace {

const geo::EuclideanOracle kOracle;

trace::Taxi make_taxi(trace::TaxiId id, geo::Point location, int seats = 4) {
  trace::Taxi taxi;
  taxi.id = id;
  taxi.location = location;
  taxi.seats = seats;
  return taxi;
}

trace::Request make_request(trace::RequestId id, geo::Point pickup, geo::Point dropoff,
                            int seats = 1) {
  trace::Request request;
  request.id = id;
  request.pickup = pickup;
  request.dropoff = dropoff;
  request.seats = seats;
  return request;
}

struct Scenario {
  std::vector<trace::Taxi> taxis;
  std::vector<trace::Request> requests;

  sim::DispatchContext context() const {
    sim::DispatchContext ctx;
    ctx.idle_taxis = taxis;
    ctx.pending = requests;
    ctx.oracle = &kOracle;
    return ctx;
  }
};

TEST(CostMatrixBuilder, DistancesAndSeatFeasibility) {
  Scenario s;
  s.taxis = {make_taxi(0, {3, 4}), make_taxi(1, {0, 0}, /*seats=*/1)};
  s.requests = {make_request(0, {0, 0}, {5, 5}, /*seats=*/2)};
  const auto costs = pickup_cost_matrix(s.context(), 100.0);
  EXPECT_DOUBLE_EQ(costs.at(0, 0), 5.0);
  EXPECT_TRUE(costs.forbidden(0, 1));  // seat shortage
}

TEST(CostMatrixBuilder, PickupCapForbidsFarTaxis) {
  Scenario s;
  s.taxis = {make_taxi(0, {10, 0})};
  s.requests = {make_request(0, {0, 0}, {1, 1})};
  const auto costs = pickup_cost_matrix(s.context(), 5.0);
  EXPECT_TRUE(costs.forbidden(0, 0));
}

TEST(Greedy, NamesAndNearestChoice) {
  NonSharingBaseline greedy(NonSharingPolicy::kGreedy);
  EXPECT_EQ(greedy.name(), "Greedy");
  Scenario s;
  s.taxis = {make_taxi(0, {5, 0}), make_taxi(1, {1, 0})};
  s.requests = {make_request(0, {0, 0}, {2, 2})};
  const auto assignments = greedy.dispatch(s.context());
  ASSERT_EQ(assignments.size(), 1u);
  EXPECT_EQ(assignments[0].taxi, 1);
  EXPECT_EQ(assignments[0].requests, (std::vector<trace::RequestId>{0}));
  ASSERT_EQ(assignments[0].route.stop_count(), 2u);
  EXPECT_TRUE(assignments[0].route.start.has_value());
}

TEST(MinCost, BeatsGreedyOnTheFig1Instance) {
  Scenario s;
  // Fig. 1 distances: D(t0,r0)=2, D(t1,r0)=3, D(t0,r1)=5, D(t1,r1)=10.
  // Greedy serves r0 first with t0 and pays 2 + 10 = 12; min-cost pays 8.
  s.taxis = {make_taxi(0, {2, 0}), make_taxi(1, {-3, 0})};
  s.requests = {make_request(0, {0, 0}, {1, 1}),
                make_request(1, {7, 0}, {8, 1})};
  NonSharingBaseline greedy(NonSharingPolicy::kGreedy);
  NonSharingBaseline min_cost(NonSharingPolicy::kMinCost);
  const auto greedy_out = greedy.dispatch(s.context());
  const auto optimal_out = min_cost.dispatch(s.context());
  const auto total = [&](const std::vector<sim::DispatchAssignment>& assignments) {
    double sum = 0.0;
    for (const auto& a : assignments) {
      sum += kOracle.distance(*a.route.start, a.route.stops[0].point);
    }
    return sum;
  };
  EXPECT_LE(total(optimal_out), total(greedy_out));
  EXPECT_LT(total(optimal_out), total(greedy_out));  // strictly better here
}

TEST(MinMax, MinimizesTheWorstPickup) {
  Scenario s;
  s.taxis = {make_taxi(0, {1, 0}), make_taxi(1, {5, 0})};
  s.requests = {make_request(0, {0, 0}, {1, 1}), make_request(1, {6, 0}, {7, 1})};
  NonSharingBaseline min_max(NonSharingPolicy::kMinMax);
  const auto assignments = min_max.dispatch(s.context());
  ASSERT_EQ(assignments.size(), 2u);
  double worst = 0.0;
  for (const auto& a : assignments) {
    worst = std::max(worst, kOracle.distance(*a.route.start, a.route.stops[0].point));
  }
  EXPECT_NEAR(worst, 1.0, 1e-9);
}

TEST(AllPolicies, EmptyInputsProduceNothing) {
  for (const auto policy : {NonSharingPolicy::kGreedy, NonSharingPolicy::kMinCost,
                            NonSharingPolicy::kMinMax}) {
    NonSharingBaseline baseline(policy);
    Scenario s;
    EXPECT_TRUE(baseline.dispatch(s.context()).empty());
    s.taxis = {make_taxi(0, {0, 0})};
    EXPECT_TRUE(baseline.dispatch(s.context()).empty());
  }
}

TEST(AllPolicies, CapLeavesRequestsUndispatched) {
  NonSharingOptions options;
  options.max_pickup_km = 2.0;
  for (const auto policy : {NonSharingPolicy::kGreedy, NonSharingPolicy::kMinCost,
                            NonSharingPolicy::kMinMax}) {
    NonSharingBaseline baseline(policy, options);
    Scenario s;
    s.taxis = {make_taxi(0, {10, 10})};
    s.requests = {make_request(0, {0, 0}, {1, 1})};
    EXPECT_TRUE(baseline.dispatch(s.context()).empty());
  }
}

TEST(AllPolicies, OneTaxiServesAtMostOneRequestPerFrame) {
  for (const auto policy : {NonSharingPolicy::kGreedy, NonSharingPolicy::kMinCost,
                            NonSharingPolicy::kMinMax}) {
    NonSharingBaseline baseline(policy);
    Scenario s;
    s.taxis = {make_taxi(0, {0, 0})};
    s.requests = {make_request(0, {1, 0}, {2, 0}), make_request(1, {0, 1}, {0, 2})};
    const auto assignments = baseline.dispatch(s.context());
    ASSERT_EQ(assignments.size(), 1u);
    EXPECT_EQ(assignments[0].requests.size(), 1u);
  }
}

}  // namespace
}  // namespace o2o::baselines
