#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/ilp.h"
#include "baselines/raii.h"
#include "baselines/sarp.h"
#include "baselines/working_fleet.h"
#include "routing/route.h"

namespace o2o::baselines {
namespace {

const geo::EuclideanOracle kOracle;

trace::Taxi make_taxi(trace::TaxiId id, geo::Point location, int seats = 4) {
  trace::Taxi taxi;
  taxi.id = id;
  taxi.location = location;
  taxi.seats = seats;
  return taxi;
}

trace::Request make_request(trace::RequestId id, geo::Point pickup, geo::Point dropoff,
                            int seats = 1) {
  trace::Request request;
  request.id = id;
  request.pickup = pickup;
  request.dropoff = dropoff;
  request.seats = seats;
  return request;
}

struct Scenario {
  std::vector<trace::Taxi> idle;
  std::vector<sim::BusyTaxiView> busy;
  std::vector<trace::Request> pending;

  sim::DispatchContext context() const {
    sim::DispatchContext ctx;
    ctx.idle_taxis = idle;
    ctx.busy_taxis = busy;
    ctx.pending = pending;
    ctx.oracle = &kOracle;
    return ctx;
  }
};

void expect_assignments_sane(const std::vector<sim::DispatchAssignment>& assignments) {
  for (const auto& a : assignments) {
    EXPECT_FALSE(a.requests.empty());
    EXPECT_TRUE(a.route.start.has_value());
    EXPECT_TRUE(routing::respects_precedence(a.route));
  }
}

// ------------------------------------------------------------ working fleet

TEST(WorkingFleet, BuildsIdleAndBusyEntries) {
  Scenario s;
  s.idle = {make_taxi(0, {0, 0})};
  sim::BusyTaxiView busy;
  busy.taxi = make_taxi(1, {5, 5});
  busy.remaining_stops = {routing::Stop{7, false, {6, 6}}};
  busy.onboard = {7};
  busy.seats_in_use = 2;
  busy.route_request_seats = {{7, 2}};
  s.busy = {busy};

  const auto fleet = build_working_fleet(s.context(), /*include_busy=*/true);
  ASSERT_EQ(fleet.size(), 2u);
  EXPECT_FALSE(fleet[0].busy);
  EXPECT_TRUE(fleet[1].busy);
  EXPECT_EQ(fleet[1].seats_onboard, 2);
  EXPECT_EQ(fleet[1].route.stops.size(), 1u);

  const auto idle_only = build_working_fleet(s.context(), /*include_busy=*/false);
  EXPECT_EQ(idle_only.size(), 1u);
}

TEST(WorkingFleet, CapacityCheckWalksTheRoute) {
  WorkingTaxi taxi;
  taxi.taxi = make_taxi(0, {0, 0}, /*seats=*/2);
  taxi.seats_onboard = 1;
  taxi.seats_of = {{1, 1}};
  routing::Route route;
  route.start = geo::Point{0, 0};
  route.stops = {routing::Stop{2, true, {1, 0}},
                 routing::Stop{1, false, {2, 0}},
                 routing::Stop{2, false, {3, 0}}};
  const auto extra = make_request(2, {1, 0}, {3, 0}, /*seats=*/1);
  EXPECT_TRUE(capacity_ok(taxi, route, &extra));
  const auto too_big = make_request(2, {1, 0}, {3, 0}, /*seats=*/2);
  EXPECT_FALSE(capacity_ok(taxi, route, &too_big));
}

// ----------------------------------------------------------------- RAII

TEST(Raii, AssignsNearbyIdleTaxi) {
  RaiiDispatcher dispatcher;
  Scenario s;
  s.idle = {make_taxi(0, {1, 0})};
  s.pending = {make_request(0, {0, 0}, {3, 0})};
  const auto assignments = dispatcher.dispatch(s.context());
  ASSERT_EQ(assignments.size(), 1u);
  EXPECT_EQ(assignments[0].taxi, 0);
  expect_assignments_sane(assignments);
}

TEST(Raii, InsertsIntoABusyTaxiRoute) {
  RaiiDispatcher dispatcher;
  Scenario s;
  sim::BusyTaxiView busy;
  busy.taxi = make_taxi(3, {0, 0});
  busy.remaining_stops = {routing::Stop{9, false, {10, 0}}};
  busy.onboard = {9};
  busy.seats_in_use = 1;
  busy.route_request_seats = {{9, 1}};
  s.busy = {busy};
  s.pending = {make_request(0, {2, 0}, {6, 0})};  // on the way
  const auto assignments = dispatcher.dispatch(s.context());
  ASSERT_EQ(assignments.size(), 1u);
  EXPECT_EQ(assignments[0].taxi, 3);
  // The emitted route must still drop off the onboard rider.
  bool drops_onboard = false;
  for (const auto& stop : assignments[0].route.stops) {
    drops_onboard |= (stop.request == 9 && !stop.is_pickup);
  }
  EXPECT_TRUE(drops_onboard);
  // Rider 9 is already onboard, so precedence holds modulo that.
  EXPECT_TRUE(routing::respects_precedence(assignments[0].route, {9}));
}

TEST(Raii, SearchRadiusLimitsCandidates) {
  RaiiOptions options;
  options.search_radius_km = 2.0;
  RaiiDispatcher dispatcher(options);
  Scenario s;
  s.idle = {make_taxi(0, {50, 50})};
  s.pending = {make_request(0, {0, 0}, {1, 0})};
  EXPECT_TRUE(dispatcher.dispatch(s.context()).empty());
}

TEST(Raii, RespectsCapacityWhenPacking) {
  RaiiDispatcher dispatcher;
  Scenario s;
  s.idle = {make_taxi(0, {0, 0}, /*seats=*/1)};
  s.pending = {make_request(0, {1, 0}, {5, 0}), make_request(1, {1.2, 0}, {5.2, 0})};
  const auto assignments = dispatcher.dispatch(s.context());
  ASSERT_EQ(assignments.size(), 1u);
  EXPECT_EQ(assignments[0].requests.size(), 1u);  // second rider didn't fit
}

TEST(Raii, PacksCompatibleRequestsOntoOneTaxi) {
  RaiiDispatcher dispatcher;
  Scenario s;
  s.idle = {make_taxi(0, {0, 0})};
  s.pending = {make_request(0, {1, 0}, {8, 0}), make_request(1, {2, 0}, {7, 0})};
  const auto assignments = dispatcher.dispatch(s.context());
  ASSERT_EQ(assignments.size(), 1u);
  EXPECT_EQ(assignments[0].requests.size(), 2u);
  expect_assignments_sane(assignments);
}

// ----------------------------------------------------------------- SARP

TEST(Sarp, OpensRouteOnNearestIdleTaxi) {
  SarpDispatcher dispatcher;
  Scenario s;
  s.idle = {make_taxi(0, {9, 0}), make_taxi(1, {1, 0})};
  s.pending = {make_request(0, {0, 0}, {4, 0})};
  const auto assignments = dispatcher.dispatch(s.context());
  ASSERT_EQ(assignments.size(), 1u);
  EXPECT_EQ(assignments[0].taxi, 1);
}

TEST(Sarp, InsertsSecondRequestWhenCheaper) {
  SarpDispatcher dispatcher;
  Scenario s;
  s.idle = {make_taxi(0, {0, 0}), make_taxi(1, {40, 40})};
  s.pending = {make_request(0, {1, 0}, {10, 0}), make_request(1, {2, 0}, {9, 0})};
  const auto assignments = dispatcher.dispatch(s.context());
  ASSERT_EQ(assignments.size(), 1u);  // both on taxi 0
  EXPECT_EQ(assignments[0].requests.size(), 2u);
  expect_assignments_sane(assignments);
}

TEST(Sarp, DetourBoundBlocksBadPairings) {
  SarpOptions options;
  options.detour_threshold_km = 0.1;
  SarpDispatcher dispatcher(options);
  Scenario s;
  // Second request would force a big detour for the first.
  s.idle = {make_taxi(0, {0, 0})};
  s.pending = {make_request(0, {1, 0}, {10, 0}), make_request(1, {5, 8}, {5, -8})};
  const auto assignments = dispatcher.dispatch(s.context());
  ASSERT_EQ(assignments.size(), 1u);
  EXPECT_EQ(assignments[0].requests.size(), 1u);
}

TEST(Sarp, IgnoresBusyTaxis) {
  SarpDispatcher dispatcher;
  Scenario s;
  sim::BusyTaxiView busy;
  busy.taxi = make_taxi(0, {0, 0});
  busy.remaining_stops = {routing::Stop{9, false, {1, 0}}};
  busy.onboard = {9};
  busy.seats_in_use = 1;
  busy.route_request_seats = {{9, 1}};
  s.busy = {busy};
  s.pending = {make_request(0, {0.5, 0}, {2, 0})};
  EXPECT_TRUE(dispatcher.dispatch(s.context()).empty());
}

// ------------------------------------------------------------------ ILP

TEST(Ilp, ExactSolvesTheTinyJointProblem) {
  IlpDispatcher dispatcher;
  Scenario s;
  s.idle = {make_taxi(0, {0, 0}), make_taxi(1, {10, 0})};
  s.pending = {make_request(0, {1, 0}, {3, 0}), make_request(1, {11, 0}, {13, 0})};
  const auto assignments = dispatcher.dispatch(s.context());
  ASSERT_EQ(assignments.size(), 2u);
  // Each request should get its local taxi.
  for (const auto& a : assignments) {
    const double approach = kOracle.distance(*a.route.start, a.route.stops[0].point);
    EXPECT_NEAR(approach, 1.0, 1e-9);
  }
  expect_assignments_sane(assignments);
}

TEST(Ilp, PrefersSharingWhenItCoversMoreRequests) {
  IlpDispatcher dispatcher;
  Scenario s;
  s.idle = {make_taxi(0, {0, 0})};  // a single taxi for two parallel trips
  s.pending = {make_request(0, {1, 0}, {8, 0}), make_request(1, {1.5, 0}, {8.5, 0})};
  const auto assignments = dispatcher.dispatch(s.context());
  ASSERT_EQ(assignments.size(), 1u);
  EXPECT_EQ(assignments[0].requests.size(), 2u);
}

TEST(Ilp, GreedyFallbackStillCoversLargeFrames) {
  IlpOptions options;
  options.exact_option_limit = 4;  // force the heuristic path
  IlpDispatcher dispatcher(options);
  Scenario s;
  for (int t = 0; t < 6; ++t) {
    s.idle.push_back(make_taxi(t, {2.0 * t, 0}));
  }
  for (int r = 0; r < 8; ++r) {
    s.pending.push_back(
        make_request(r, {2.0 * (r % 6), 1.0}, {2.0 * (r % 6), 6.0}));
  }
  const auto assignments = dispatcher.dispatch(s.context());
  EXPECT_GE(assignments.size(), 4u);
  expect_assignments_sane(assignments);
  // No taxi or request reuse.
  std::vector<trace::TaxiId> taxis_used;
  std::vector<trace::RequestId> requests_used;
  for (const auto& a : assignments) {
    taxis_used.push_back(a.taxi);
    for (auto id : a.requests) requests_used.push_back(id);
  }
  std::sort(taxis_used.begin(), taxis_used.end());
  EXPECT_EQ(std::adjacent_find(taxis_used.begin(), taxis_used.end()), taxis_used.end());
  std::sort(requests_used.begin(), requests_used.end());
  EXPECT_EQ(std::adjacent_find(requests_used.begin(), requests_used.end()),
            requests_used.end());
}

TEST(Ilp, MaxPickupCapLeavesFarRequestsPending) {
  IlpOptions options;
  options.max_pickup_km = 2.0;
  IlpDispatcher dispatcher(options);
  Scenario s;
  s.idle = {make_taxi(0, {50, 50})};
  s.pending = {make_request(0, {0, 0}, {1, 0})};
  EXPECT_TRUE(dispatcher.dispatch(s.context()).empty());
}

}  // namespace
}  // namespace o2o::baselines
