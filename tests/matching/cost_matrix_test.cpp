#include "matching/cost_matrix.h"

#include <gtest/gtest.h>

#include "util/contracts.h"

namespace o2o::matching {
namespace {

TEST(CostMatrix, StoresAndRetrieves) {
  CostMatrix costs(2, 3, 1.5);
  EXPECT_EQ(costs.rows(), 2u);
  EXPECT_EQ(costs.cols(), 3u);
  EXPECT_DOUBLE_EQ(costs.at(1, 2), 1.5);
  costs.at(0, 1) = 7.0;
  EXPECT_DOUBLE_EQ(costs.at(0, 1), 7.0);
}

TEST(CostMatrix, OutOfRangeThrows) {
  CostMatrix costs(2, 2);
  EXPECT_THROW(costs.at(2, 0), ContractViolation);
  EXPECT_THROW(costs.at(0, 2), ContractViolation);
}

TEST(CostMatrix, ForbiddenFlag) {
  CostMatrix costs(1, 2, 0.0);
  costs.at(0, 1) = kForbidden;
  EXPECT_FALSE(costs.forbidden(0, 0));
  EXPECT_TRUE(costs.forbidden(0, 1));
}

TEST(AssignmentHelpers, CostSizeBottleneck) {
  CostMatrix costs(3, 3, 0.0);
  costs.at(0, 0) = 1.0;
  costs.at(1, 2) = 5.0;
  const Assignment assignment{0, 2, -1};
  EXPECT_DOUBLE_EQ(assignment_cost(costs, assignment), 6.0);
  EXPECT_DOUBLE_EQ(assignment_bottleneck(costs, assignment), 5.0);
  EXPECT_EQ(assignment_size(assignment), 2u);
}

TEST(AssignmentHelpers, EmptyAssignmentBottleneckIsMinusInfinity) {
  CostMatrix costs(2, 2, 1.0);
  const Assignment none{-1, -1};
  EXPECT_EQ(assignment_bottleneck(costs, none),
            -std::numeric_limits<double>::infinity());
  EXPECT_EQ(assignment_size(none), 0u);
}

TEST(Validity, AcceptsProperAssignment) {
  CostMatrix costs(2, 3, 1.0);
  EXPECT_TRUE(is_valid_assignment(costs, {0, 2}));
  EXPECT_TRUE(is_valid_assignment(costs, {-1, 1}));
}

TEST(Validity, RejectsDuplicateColumn) {
  CostMatrix costs(2, 3, 1.0);
  EXPECT_FALSE(is_valid_assignment(costs, {1, 1}));
}

TEST(Validity, RejectsOutOfRangeColumn) {
  CostMatrix costs(2, 3, 1.0);
  EXPECT_FALSE(is_valid_assignment(costs, {3, 0}));
}

TEST(Validity, RejectsForbiddenPair) {
  CostMatrix costs(1, 2, 1.0);
  costs.at(0, 0) = kForbidden;
  EXPECT_FALSE(is_valid_assignment(costs, {0}));
  EXPECT_TRUE(is_valid_assignment(costs, {1}));
}

TEST(Validity, RejectsWrongLength) {
  CostMatrix costs(2, 2, 1.0);
  EXPECT_FALSE(is_valid_assignment(costs, {0}));
}

}  // namespace
}  // namespace o2o::matching
