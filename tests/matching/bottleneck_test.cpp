#include "matching/bottleneck.h"

#include <gtest/gtest.h>

#include "matching/brute_force.h"
#include "util/rng.h"

namespace o2o::matching {
namespace {

TEST(Bottleneck, PrefersBalancedOverCheapTotal) {
  // Total-cost optimum pairs (0,0)=1 and (1,1)=9 (total 10, max 9); the
  // bottleneck optimum is (0,1)=5, (1,0)=5 (total 10, max 5).
  CostMatrix costs(2, 2);
  costs.at(0, 0) = 1.0;
  costs.at(0, 1) = 5.0;
  costs.at(1, 0) = 5.0;
  costs.at(1, 1) = 9.0;
  const Assignment assignment = solve_min_max(costs);
  EXPECT_EQ(assignment_size(assignment), 2u);
  EXPECT_DOUBLE_EQ(assignment_bottleneck(costs, assignment), 5.0);
}

TEST(Bottleneck, SingleRow) {
  CostMatrix costs(1, 3);
  costs.at(0, 0) = 4;
  costs.at(0, 1) = 2;
  costs.at(0, 2) = 8;
  EXPECT_EQ(solve_min_max(costs), (Assignment{1}));
}

TEST(Bottleneck, ForbiddenPairsRespected) {
  CostMatrix costs(2, 2, kForbidden);
  costs.at(0, 1) = 3.0;
  costs.at(1, 0) = 4.0;
  const Assignment assignment = solve_min_max(costs);
  EXPECT_EQ(assignment, (Assignment{1, 0}));
}

TEST(Bottleneck, AllForbiddenMatchesNothing) {
  CostMatrix costs(2, 3, kForbidden);
  EXPECT_EQ(assignment_size(solve_min_max(costs)), 0u);
}

TEST(Bottleneck, CardinalityBeforeBottleneck) {
  // Dropping row 1 would give max cost 1, but both rows can be matched
  // with max cost 50 -- cardinality wins.
  CostMatrix costs(2, 2, kForbidden);
  costs.at(0, 0) = 1.0;
  costs.at(0, 1) = 50.0;
  costs.at(1, 0) = 2.0;
  const Assignment assignment = solve_min_max(costs);
  EXPECT_EQ(assignment_size(assignment), 2u);
  EXPECT_DOUBLE_EQ(assignment_bottleneck(costs, assignment), 50.0);
}

TEST(Bottleneck, EmptyMatrix) {
  CostMatrix costs(0, 2);
  EXPECT_TRUE(solve_min_max(costs).empty());
}

struct RandomCase {
  std::uint64_t seed;
  std::size_t rows;
  std::size_t cols;
  double forbidden_fraction;
};

class BottleneckVsBruteForce : public ::testing::TestWithParam<RandomCase> {};

TEST_P(BottleneckVsBruteForce, ObjectiveMatchesExhaustiveSearch) {
  const RandomCase param = GetParam();
  Rng rng(param.seed);
  for (int trial = 0; trial < 25; ++trial) {
    CostMatrix costs(param.rows, param.cols);
    for (std::size_t r = 0; r < param.rows; ++r) {
      for (std::size_t c = 0; c < param.cols; ++c) {
        costs.at(r, c) = rng.bernoulli(param.forbidden_fraction)
                             ? kForbidden
                             : rng.uniform(0.0, 20.0);
      }
    }
    const Assignment fast = solve_min_max(costs);
    const Assignment exact = brute_force_min_max(costs);
    EXPECT_TRUE(is_valid_assignment(costs, fast));
    EXPECT_EQ(assignment_size(fast), assignment_size(exact)) << "trial " << trial;
    if (assignment_size(exact) > 0) {
      EXPECT_NEAR(assignment_bottleneck(costs, fast),
                  assignment_bottleneck(costs, exact), 1e-9)
          << "trial " << trial;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomInstances, BottleneckVsBruteForce,
    ::testing::Values(RandomCase{201, 3, 3, 0.0}, RandomCase{202, 4, 4, 0.25},
                      RandomCase{203, 5, 5, 0.5}, RandomCase{204, 2, 6, 0.1},
                      RandomCase{205, 6, 2, 0.1}, RandomCase{206, 6, 6, 0.35}));

TEST(Bottleneck, BottleneckNeverExceedsMinCostBottleneck) {
  // The min-max matching's bottleneck is by definition <= any other
  // max-cardinality matching's bottleneck, including the Hungarian one.
  Rng rng(303);
  for (int trial = 0; trial < 20; ++trial) {
    CostMatrix costs(5, 5);
    for (std::size_t r = 0; r < 5; ++r) {
      for (std::size_t c = 0; c < 5; ++c) costs.at(r, c) = rng.uniform(0.0, 30.0);
    }
    const Assignment min_max = solve_min_max(costs);
    const Assignment min_cost = brute_force_min_cost(costs);
    EXPECT_LE(assignment_bottleneck(costs, min_max),
              assignment_bottleneck(costs, min_cost) + 1e-9);
  }
}

}  // namespace
}  // namespace o2o::matching
