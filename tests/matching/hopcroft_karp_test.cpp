#include "matching/hopcroft_karp.h"

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "util/contracts.h"
#include "util/rng.h"

namespace o2o::matching {
namespace {

/// Exhaustive maximum-matching size for small graphs (reference).
std::size_t brute_force_matching_size(std::size_t left, std::size_t right,
                                      const std::vector<std::pair<std::size_t, std::size_t>>& edges) {
  std::vector<int> right_used(right, 0);
  std::function<std::size_t(std::size_t)> recurse = [&](std::size_t u) -> std::size_t {
    if (u == left) return 0;
    std::size_t best = recurse(u + 1);  // leave u unmatched
    for (const auto& [a, b] : edges) {
      if (a != u || right_used[b]) continue;
      right_used[b] = 1;
      best = std::max(best, 1 + recurse(u + 1));
      right_used[b] = 0;
    }
    return best;
  };
  return recurse(0);
}

TEST(HopcroftKarp, PerfectMatchingOnCycle) {
  BipartiteGraph graph(3, 3);
  graph.add_edge(0, 0);
  graph.add_edge(0, 1);
  graph.add_edge(1, 1);
  graph.add_edge(1, 2);
  graph.add_edge(2, 2);
  graph.add_edge(2, 0);
  const MatchingResult result = hopcroft_karp(graph);
  EXPECT_EQ(result.size, 3u);
}

TEST(HopcroftKarp, EmptyGraphMatchesNothing) {
  BipartiteGraph graph(4, 4);
  const MatchingResult result = hopcroft_karp(graph);
  EXPECT_EQ(result.size, 0u);
  for (int m : result.left_to_right) EXPECT_EQ(m, -1);
}

TEST(HopcroftKarp, StarGraphMatchesOne) {
  BipartiteGraph graph(4, 1);
  for (std::size_t u = 0; u < 4; ++u) graph.add_edge(u, 0);
  EXPECT_EQ(hopcroft_karp(graph).size, 1u);
}

TEST(HopcroftKarp, AugmentingPathIsFound) {
  // Greedy left-to-right would match 0-0 and strand 1; HK augments.
  BipartiteGraph graph(2, 2);
  graph.add_edge(0, 0);
  graph.add_edge(0, 1);
  graph.add_edge(1, 0);
  const MatchingResult result = hopcroft_karp(graph);
  EXPECT_EQ(result.size, 2u);
  EXPECT_EQ(result.left_to_right[0], 1);
  EXPECT_EQ(result.left_to_right[1], 0);
}

TEST(HopcroftKarp, MirrorsAreConsistent) {
  BipartiteGraph graph(3, 4);
  graph.add_edge(0, 1);
  graph.add_edge(1, 1);
  graph.add_edge(1, 2);
  graph.add_edge(2, 3);
  const MatchingResult result = hopcroft_karp(graph);
  for (std::size_t u = 0; u < 3; ++u) {
    if (result.left_to_right[u] >= 0) {
      EXPECT_EQ(result.right_to_left[static_cast<std::size_t>(result.left_to_right[u])],
                static_cast<int>(u));
    }
  }
  std::size_t matched_right = 0;
  for (int m : result.right_to_left) {
    if (m >= 0) ++matched_right;
  }
  EXPECT_EQ(matched_right, result.size);
}

TEST(HopcroftKarp, EdgeValidationThrows) {
  BipartiteGraph graph(2, 2);
  EXPECT_THROW(graph.add_edge(2, 0), o2o::ContractViolation);
  EXPECT_THROW(graph.add_edge(0, 2), o2o::ContractViolation);
}

class HopcroftKarpRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HopcroftKarpRandom, SizeMatchesBruteForce) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t left = 1 + rng.uniform_index(6);
    const std::size_t right = 1 + rng.uniform_index(6);
    BipartiteGraph graph(left, right);
    std::vector<std::pair<std::size_t, std::size_t>> edges;
    for (std::size_t u = 0; u < left; ++u) {
      for (std::size_t v = 0; v < right; ++v) {
        if (rng.bernoulli(0.4)) {
          graph.add_edge(u, v);
          edges.emplace_back(u, v);
        }
      }
    }
    EXPECT_EQ(hopcroft_karp(graph).size, brute_force_matching_size(left, right, edges))
        << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HopcroftKarpRandom, ::testing::Values(11, 12, 13, 14));

}  // namespace
}  // namespace o2o::matching
