#include "matching/greedy.h"

#include <gtest/gtest.h>

#include "matching/hungarian.h"
#include "util/rng.h"

namespace o2o::matching {
namespace {

TEST(Greedy, EachRowTakesItsNearestAvailableColumn) {
  CostMatrix costs(2, 2);
  costs.at(0, 0) = 1.0;
  costs.at(0, 1) = 2.0;
  costs.at(1, 0) = 1.5;  // row 1 wanted column 0, but row 0 took it
  costs.at(1, 1) = 9.0;
  EXPECT_EQ(solve_greedy(costs), (Assignment{0, 1}));
}

TEST(Greedy, RowOrderMatters) {
  // The paper's Fig. 1 scenario: greedy is sensitive to arrival order and
  // can be globally suboptimal.
  CostMatrix costs(2, 2);
  costs.at(0, 0) = 2.0;
  costs.at(0, 1) = 3.0;
  costs.at(1, 0) = 1.0;
  costs.at(1, 1) = 10.0;
  const Assignment greedy = solve_greedy(costs);
  EXPECT_EQ(greedy, (Assignment{0, 1}));  // total 12
  const Assignment optimal = solve_min_cost(costs);
  EXPECT_LT(assignment_cost(costs, optimal), assignment_cost(costs, greedy));
}

TEST(Greedy, SkipsForbiddenEntries) {
  CostMatrix costs(1, 2);
  costs.at(0, 0) = kForbidden;
  costs.at(0, 1) = 5.0;
  EXPECT_EQ(solve_greedy(costs), (Assignment{1}));
}

TEST(Greedy, UnmatchableRowStaysUnmatched) {
  CostMatrix costs(2, 1);
  costs.at(0, 0) = 1.0;
  costs.at(1, 0) = 0.5;
  EXPECT_EQ(solve_greedy(costs), (Assignment{0, -1}));
}

TEST(Greedy, AlwaysValidAndMaximalOnFeasiblePairs) {
  Rng rng(404);
  for (int trial = 0; trial < 30; ++trial) {
    CostMatrix costs(6, 5);
    for (std::size_t r = 0; r < 6; ++r) {
      for (std::size_t c = 0; c < 5; ++c) {
        costs.at(r, c) = rng.bernoulli(0.3) ? kForbidden : rng.uniform(0.0, 10.0);
      }
    }
    const Assignment assignment = solve_greedy(costs);
    EXPECT_TRUE(is_valid_assignment(costs, assignment));
    // Maximality: no unmatched row has a feasible unused column.
    std::vector<bool> used(costs.cols(), false);
    for (int c : assignment) {
      if (c >= 0) used[static_cast<std::size_t>(c)] = true;
    }
    for (std::size_t r = 0; r < costs.rows(); ++r) {
      if (assignment[r] >= 0) continue;
      for (std::size_t c = 0; c < costs.cols(); ++c) {
        EXPECT_TRUE(used[c] || costs.forbidden(r, c))
            << "row " << r << " could still take column " << c;
      }
    }
  }
}

}  // namespace
}  // namespace o2o::matching
