#include "matching/hungarian.h"

#include <gtest/gtest.h>

#include "matching/brute_force.h"
#include "util/rng.h"

namespace o2o::matching {
namespace {

TEST(Hungarian, TextbookSquareInstance) {
  CostMatrix costs(3, 3);
  const double values[3][3] = {{4, 1, 3}, {2, 0, 5}, {3, 2, 2}};
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) costs.at(r, c) = values[r][c];
  }
  const Assignment assignment = solve_min_cost(costs);
  EXPECT_DOUBLE_EQ(assignment_cost(costs, assignment), 5.0);  // 1 + 2 + 2
  EXPECT_EQ(assignment_size(assignment), 3u);
}

TEST(Hungarian, SingleCell) {
  CostMatrix costs(1, 1, 3.5);
  EXPECT_EQ(solve_min_cost(costs), (Assignment{0}));
}

TEST(Hungarian, MoreRowsThanColumnsLeavesRowsUnmatched) {
  CostMatrix costs(3, 1);
  costs.at(0, 0) = 5.0;
  costs.at(1, 0) = 1.0;
  costs.at(2, 0) = 3.0;
  const Assignment assignment = solve_min_cost(costs);
  EXPECT_EQ(assignment_size(assignment), 1u);
  EXPECT_EQ(assignment[1], 0);  // the cheapest row wins
}

TEST(Hungarian, MoreColumnsThanRows) {
  CostMatrix costs(1, 4);
  costs.at(0, 0) = 9;
  costs.at(0, 1) = 2;
  costs.at(0, 2) = 7;
  costs.at(0, 3) = 4;
  EXPECT_EQ(solve_min_cost(costs), (Assignment{1}));
}

TEST(Hungarian, ForbiddenPairsAreNeverUsed) {
  CostMatrix costs(2, 2, 1.0);
  costs.at(0, 0) = kForbidden;
  costs.at(1, 1) = kForbidden;
  const Assignment assignment = solve_min_cost(costs);
  EXPECT_EQ(assignment, (Assignment{1, 0}));
}

TEST(Hungarian, AllForbiddenLeavesEverythingUnmatched) {
  CostMatrix costs(2, 2, kForbidden);
  const Assignment assignment = solve_min_cost(costs);
  EXPECT_EQ(assignment_size(assignment), 0u);
}

TEST(Hungarian, MaximizesCardinalityBeforeCost) {
  // Matching both rows forces total cost 100 + 1; matching only row 0 at
  // cost 1 would be cheaper but loses cardinality.
  CostMatrix costs(2, 2, kForbidden);
  costs.at(0, 0) = 1.0;
  costs.at(0, 1) = 100.0;
  costs.at(1, 0) = 1.0;
  const Assignment assignment = solve_min_cost(costs);
  EXPECT_EQ(assignment_size(assignment), 2u);
  EXPECT_EQ(assignment, (Assignment{1, 0}));
}

TEST(Hungarian, HandlesNegativeCosts) {
  CostMatrix costs(2, 2);
  costs.at(0, 0) = -5.0;
  costs.at(0, 1) = 1.0;
  costs.at(1, 0) = -1.0;
  costs.at(1, 1) = -4.0;
  const Assignment assignment = solve_min_cost(costs);
  EXPECT_DOUBLE_EQ(assignment_cost(costs, assignment), -9.0);
}

TEST(Hungarian, EmptyMatrixEdges) {
  CostMatrix costs(0, 3);
  EXPECT_TRUE(solve_min_cost(costs).empty());
}

struct RandomCase {
  std::uint64_t seed;
  std::size_t rows;
  std::size_t cols;
  double forbidden_fraction;
};

class HungarianVsBruteForce : public ::testing::TestWithParam<RandomCase> {};

TEST_P(HungarianVsBruteForce, ObjectiveMatchesExhaustiveSearch) {
  const RandomCase param = GetParam();
  Rng rng(param.seed);
  for (int trial = 0; trial < 25; ++trial) {
    CostMatrix costs(param.rows, param.cols);
    for (std::size_t r = 0; r < param.rows; ++r) {
      for (std::size_t c = 0; c < param.cols; ++c) {
        costs.at(r, c) = rng.bernoulli(param.forbidden_fraction)
                             ? kForbidden
                             : rng.uniform(-10.0, 10.0);
      }
    }
    const Assignment fast = solve_min_cost(costs);
    const Assignment exact = brute_force_min_cost(costs);
    EXPECT_TRUE(is_valid_assignment(costs, fast));
    EXPECT_EQ(assignment_size(fast), assignment_size(exact)) << "trial " << trial;
    EXPECT_NEAR(assignment_cost(costs, fast), assignment_cost(costs, exact), 1e-9)
        << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomInstances, HungarianVsBruteForce,
    ::testing::Values(RandomCase{101, 3, 3, 0.0}, RandomCase{102, 4, 4, 0.2},
                      RandomCase{103, 5, 5, 0.4}, RandomCase{104, 2, 6, 0.1},
                      RandomCase{105, 6, 2, 0.1}, RandomCase{106, 5, 3, 0.3},
                      RandomCase{107, 3, 7, 0.5}, RandomCase{108, 6, 6, 0.6},
                      RandomCase{109, 1, 5, 0.2}, RandomCase{110, 5, 1, 0.2}));

TEST(Hungarian, LargeRandomInstanceIsValidAndBeatsGreedyBound) {
  Rng rng(7777);
  const std::size_t n = 120;
  CostMatrix costs(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) costs.at(r, c) = rng.uniform(0.0, 100.0);
  }
  const Assignment assignment = solve_min_cost(costs);
  EXPECT_TRUE(is_valid_assignment(costs, assignment));
  EXPECT_EQ(assignment_size(assignment), n);
  // Sanity: the optimum cannot exceed the row-wise minima sum by much --
  // in fact it is at least that sum; check both directions loosely.
  double row_minima = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    double best = costs.at(r, 0);
    for (std::size_t c = 1; c < n; ++c) best = std::min(best, costs.at(r, c));
    row_minima += best;
  }
  EXPECT_GE(assignment_cost(costs, assignment) + 1e-9, row_minima);
}

}  // namespace
}  // namespace o2o::matching
