#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "metrics/cdf.h"
#include "metrics/histogram.h"
#include "metrics/hourly.h"
#include "metrics/summary.h"
#include "util/contracts.h"
#include "util/rng.h"

namespace o2o::metrics {
namespace {

// ---------------------------------------------------------------- stats

TEST(StreamingStats, MatchesDirectComputation) {
  const std::vector<double> data{1.0, 2.0, 2.0, 3.0, 10.0, -4.0};
  StreamingStats stats;
  for (double x : data) stats.add(x);
  const double mean = std::accumulate(data.begin(), data.end(), 0.0) / data.size();
  double var = 0.0;
  for (double x : data) var += (x - mean) * (x - mean);
  var /= data.size();
  EXPECT_EQ(stats.count(), data.size());
  EXPECT_NEAR(stats.mean(), mean, 1e-12);
  EXPECT_NEAR(stats.variance(), var, 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), -4.0);
  EXPECT_DOUBLE_EQ(stats.max(), 10.0);
  EXPECT_NEAR(stats.sum(), 14.0, 1e-12);
}

TEST(StreamingStats, EmptyHasZeroMeanAndVariance) {
  StreamingStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_THROW(stats.min(), ContractViolation);
}

TEST(StreamingStats, SingleSample) {
  StreamingStats stats;
  stats.add(7.5);
  EXPECT_DOUBLE_EQ(stats.mean(), 7.5);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.min(), 7.5);
  EXPECT_DOUBLE_EQ(stats.max(), 7.5);
}

TEST(StreamingStats, MergeEqualsPooledStream) {
  Rng rng(3);
  StreamingStats left, right, pooled;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.normal(5.0, 2.0);
    pooled.add(x);
    (i % 3 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), pooled.count());
  EXPECT_NEAR(left.mean(), pooled.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), pooled.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), pooled.min());
  EXPECT_DOUBLE_EQ(left.max(), pooled.max());
}

TEST(StreamingStats, MergeWithEmptyIsIdentity) {
  StreamingStats stats, empty;
  stats.add(1.0);
  stats.add(3.0);
  stats.merge(empty);
  EXPECT_EQ(stats.count(), 2u);
  EXPECT_DOUBLE_EQ(stats.mean(), 2.0);
  empty.merge(stats);
  EXPECT_EQ(empty.count(), 2u);
}

// ------------------------------------------------------------------ cdf

TEST(Cdf, CdfAtKnownPoints) {
  CdfBuilder cdf;
  cdf.add_all({1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(cdf.cdf_at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.cdf_at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.cdf_at(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.cdf_at(4.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.cdf_at(100.0), 1.0);
}

TEST(Cdf, CdfIsMonotone) {
  Rng rng(4);
  CdfBuilder cdf;
  for (int i = 0; i < 300; ++i) cdf.add(rng.normal(0, 5));
  double previous = -1.0;
  for (double x = -20.0; x <= 20.0; x += 0.5) {
    const double f = cdf.cdf_at(x);
    EXPECT_GE(f, previous);
    previous = f;
  }
}

TEST(Cdf, QuantileEndpointsAndMedian) {
  CdfBuilder cdf;
  cdf.add_all({10, 20, 30, 40, 50});
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 50.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 30.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.25), 20.0);
}

TEST(Cdf, QuantileInterpolatesBetweenSamples) {
  CdfBuilder cdf;
  cdf.add_all({0.0, 10.0});
  EXPECT_DOUBLE_EQ(cdf.quantile(0.3), 3.0);
}

TEST(Cdf, SingleSampleQuantiles) {
  CdfBuilder cdf;
  cdf.add(42.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 42.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.7), 42.0);
  EXPECT_DOUBLE_EQ(cdf.min(), 42.0);
  EXPECT_DOUBLE_EQ(cdf.max(), 42.0);
}

TEST(Cdf, MeanMinMax) {
  CdfBuilder cdf;
  cdf.add_all({2, 4, 9});
  EXPECT_DOUBLE_EQ(cdf.mean(), 5.0);
  EXPECT_DOUBLE_EQ(cdf.min(), 2.0);
  EXPECT_DOUBLE_EQ(cdf.max(), 9.0);
}

TEST(Cdf, SeriesCoversRangeAndEndsAtOne) {
  CdfBuilder cdf;
  cdf.add_all({1, 2, 3, 4, 5});
  const auto series = cdf.series(0.0, 5.0, 11);
  ASSERT_EQ(series.size(), 11u);
  EXPECT_DOUBLE_EQ(series.front().x, 0.0);
  EXPECT_DOUBLE_EQ(series.front().f, 0.0);
  EXPECT_DOUBLE_EQ(series.back().x, 5.0);
  EXPECT_DOUBLE_EQ(series.back().f, 1.0);
}

TEST(Cdf, EmptyThrowsOnQueries) {
  CdfBuilder cdf;
  EXPECT_TRUE(cdf.empty());
  EXPECT_THROW(cdf.cdf_at(0.0), ContractViolation);
  EXPECT_THROW(cdf.quantile(0.5), ContractViolation);
}

TEST(Cdf, AddAfterQueryStillSorts) {
  CdfBuilder cdf;
  cdf.add(5.0);
  EXPECT_DOUBLE_EQ(cdf.cdf_at(5.0), 1.0);
  cdf.add(1.0);
  EXPECT_DOUBLE_EQ(cdf.cdf_at(1.0), 0.5);
  EXPECT_DOUBLE_EQ(cdf.sorted_samples().front(), 1.0);
}

// ------------------------------------------------------------ histogram

TEST(Histogram, BucketsAndFractions) {
  Histogram histogram(0.0, 10.0, 5);
  histogram.add(0.5);   // bucket 0
  histogram.add(3.0);   // bucket 1
  histogram.add(9.99);  // bucket 4
  EXPECT_EQ(histogram.count(0), 1u);
  EXPECT_EQ(histogram.count(1), 1u);
  EXPECT_EQ(histogram.count(4), 1u);
  EXPECT_EQ(histogram.total(), 3u);
  EXPECT_NEAR(histogram.fraction(0), 1.0 / 3.0, 1e-12);
}

TEST(Histogram, OutOfRangeSamplesClampToEdges) {
  Histogram histogram(0.0, 1.0, 4);
  histogram.add(-5.0);
  histogram.add(99.0);
  EXPECT_EQ(histogram.count(0), 1u);
  EXPECT_EQ(histogram.count(3), 1u);
}

TEST(Histogram, BucketLowBoundaries) {
  Histogram histogram(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(histogram.bucket_low(0), 0.0);
  EXPECT_DOUBLE_EQ(histogram.bucket_low(3), 6.0);
}

TEST(Histogram, InvalidConstructionThrows) {
  EXPECT_THROW(Histogram(1.0, 0.0, 4), ContractViolation);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), ContractViolation);
}

// --------------------------------------------------------------- hourly

TEST(Hourly, BucketOfMapsClockTime) {
  HourlyBuckets buckets(3);
  EXPECT_EQ(buckets.bucket_count(), 8u);
  EXPECT_EQ(buckets.bucket_of(0.0), 0u);                // midnight
  EXPECT_EQ(buckets.bucket_of(9.0 * 3600.0), 3u);       // 9 am
  EXPECT_EQ(buckets.bucket_of(18.0 * 3600.0), 6u);      // 6 pm
  EXPECT_EQ(buckets.bucket_of(23.99 * 3600.0), 7u);     // just before midnight
}

TEST(Hourly, TimesBeyondOneDayWrap) {
  HourlyBuckets buckets(3);
  EXPECT_EQ(buckets.bucket_of(24.0 * 3600.0 + 9.0 * 3600.0), 3u);
  EXPECT_EQ(buckets.bucket_of(3.0 * 86400.0), 0u);
}

TEST(Hourly, AddAccumulatesIntoTheRightBucket) {
  HourlyBuckets buckets(6);
  buckets.add(7.0 * 3600.0, 2.0);
  buckets.add(8.0 * 3600.0, 4.0);
  buckets.add(20.0 * 3600.0, 10.0);
  EXPECT_EQ(buckets.bucket(1).count(), 2u);
  EXPECT_DOUBLE_EQ(buckets.bucket(1).mean(), 3.0);
  EXPECT_EQ(buckets.bucket(3).count(), 1u);
  EXPECT_EQ(buckets.bucket(0).count(), 0u);
}

TEST(Hourly, StartHours) {
  HourlyBuckets buckets(3);
  EXPECT_EQ(buckets.bucket_start_hour(0), 0);
  EXPECT_EQ(buckets.bucket_start_hour(3), 9);
  EXPECT_EQ(buckets.bucket_start_hour(7), 21);
}

TEST(Hourly, RejectsNonDivisorBucketWidth) {
  EXPECT_THROW(HourlyBuckets(5), ContractViolation);
  EXPECT_THROW(HourlyBuckets(0), ContractViolation);
}

}  // namespace
}  // namespace o2o::metrics
