#include "metrics/bootstrap.h"

#include <gtest/gtest.h>

#include "util/contracts.h"
#include "util/rng.h"

namespace o2o::metrics {
namespace {

TEST(Bootstrap, MeanMatchesSampleMean) {
  const std::vector<double> samples{1.0, 2.0, 3.0, 4.0};
  const ConfidenceInterval ci = bootstrap_mean_ci(samples);
  EXPECT_DOUBLE_EQ(ci.mean, 2.5);
}

TEST(Bootstrap, IntervalBracketsTheMean) {
  Rng rng(13);
  std::vector<double> samples;
  for (int i = 0; i < 400; ++i) samples.push_back(rng.normal(10.0, 2.0));
  const ConfidenceInterval ci = bootstrap_mean_ci(samples, 0.95, 800, 7);
  EXPECT_LE(ci.lo, ci.mean);
  EXPECT_GE(ci.hi, ci.mean);
  EXPECT_TRUE(ci.contains(ci.mean));
  // ~95% CI half-width for n=400, sigma=2 is ~0.2; allow slack.
  EXPECT_LT(ci.hi - ci.lo, 0.8);
  EXPECT_GT(ci.hi - ci.lo, 0.1);
}

TEST(Bootstrap, CoversTheTrueMeanMostOfTheTime) {
  Rng rng(17);
  int covered = 0;
  const int runs = 60;
  for (int run = 0; run < runs; ++run) {
    std::vector<double> samples;
    for (int i = 0; i < 80; ++i) samples.push_back(rng.exponential(0.5));  // mean 2
    const ConfidenceInterval ci =
        bootstrap_mean_ci(samples, 0.95, 400, 100 + static_cast<std::uint64_t>(run));
    if (ci.contains(2.0)) ++covered;
  }
  EXPECT_GE(covered, runs * 80 / 100);  // nominal 95%, allow slack
}

TEST(Bootstrap, DegenerateConstantSample) {
  const std::vector<double> samples(20, 7.0);
  const ConfidenceInterval ci = bootstrap_mean_ci(samples);
  EXPECT_DOUBLE_EQ(ci.lo, 7.0);
  EXPECT_DOUBLE_EQ(ci.hi, 7.0);
}

TEST(Bootstrap, OverlapSemantics) {
  const ConfidenceInterval a{1.0, 0.5, 1.5};
  const ConfidenceInterval b{2.0, 1.4, 2.6};
  const ConfidenceInterval c{3.0, 2.7, 3.3};
  EXPECT_TRUE(a.overlaps(b));
  EXPECT_TRUE(b.overlaps(a));
  EXPECT_FALSE(a.overlaps(c));
}

TEST(Bootstrap, DeterministicBySeed) {
  const std::vector<double> samples{1, 5, 2, 8, 3};
  const ConfidenceInterval a = bootstrap_mean_ci(samples, 0.9, 200, 3);
  const ConfidenceInterval b = bootstrap_mean_ci(samples, 0.9, 200, 3);
  EXPECT_DOUBLE_EQ(a.lo, b.lo);
  EXPECT_DOUBLE_EQ(a.hi, b.hi);
}

TEST(Bootstrap, PreconditionsEnforced) {
  EXPECT_THROW(bootstrap_mean_ci({}), o2o::ContractViolation);
  EXPECT_THROW(bootstrap_mean_ci({1.0}, 1.5), o2o::ContractViolation);
  EXPECT_THROW(bootstrap_mean_ci({1.0}, 0.9, 5), o2o::ContractViolation);
}

}  // namespace
}  // namespace o2o::metrics
