// Core observability invariants: timers are monotone and only run while
// a sink is active, counters merge exactly across ThreadPool workers,
// gauges merge by max, and the frame lifecycle isolates frames.
#include "obs/obs.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "util/thread_pool.h"

namespace o2o::obs {
namespace {

TEST(ObsBasics, CompileTimeEnabledInDefaultBuild) {
  EXPECT_TRUE(compile_time_enabled());
}

TEST(ObsBasics, NoSinkMeansInactiveAndDropped) {
  ASSERT_EQ(active_sink(), nullptr);
  EXPECT_FALSE(tracing_active());
  // Reporting without a sink is a silent no-op, not a crash.
  add(Counter::kProposals, 5);
  gauge_max(Gauge::kPendingPeak, 7);
  add_stage_ns(Stage::kDispatch, 100);
  { StageTimer timer(Stage::kDispatch); }
}

TEST(ObsBasics, ActivationScopesTheSink) {
  TraceSink sink;
  EXPECT_FALSE(tracing_active());
  {
    Activation guard(sink);
    EXPECT_TRUE(tracing_active());
    EXPECT_EQ(active_sink(), &sink);
  }
  EXPECT_FALSE(tracing_active());
}

TEST(ObsBasics, CountersAndGaugesMergeIntoTheFrame) {
  TraceSink sink;
  Activation guard(sink);
  sink.begin_frame(3, 180.0);
  add(Counter::kProposals, 10);
  add(Counter::kProposals);
  gauge_max(Gauge::kPendingPeak, 4);
  gauge_max(Gauge::kPendingPeak, 9);
  gauge_max(Gauge::kPendingPeak, 2);
  sink.set_frame_context(5, 6, 7);
  sink.add_assignments(2);
  const FrameTrace frame = sink.end_frame();

  EXPECT_EQ(frame.frame, 3u);
  EXPECT_DOUBLE_EQ(frame.now_seconds, 180.0);
  EXPECT_GE(frame.wall_ms, 0.0);
  EXPECT_EQ(frame.counters[static_cast<std::size_t>(Counter::kProposals)], 11u);
  EXPECT_EQ(frame.gauges[static_cast<std::size_t>(Gauge::kPendingPeak)], 9u);
  EXPECT_EQ(frame.idle_taxis, 5u);
  EXPECT_EQ(frame.busy_taxis, 6u);
  EXPECT_EQ(frame.pending_requests, 7u);
  EXPECT_EQ(frame.assignments, 2u);
  ASSERT_EQ(sink.frames().size(), 1u);
  EXPECT_EQ(sink.frames()[0], frame);
}

TEST(ObsBasics, FramesAreSelfContained) {
  TraceSink sink;
  Activation guard(sink);
  sink.begin_frame(0, 0.0);
  add(Counter::kRejections, 3);
  sink.end_frame();
  // Reported between frames: dropped by the next begin_frame.
  add(Counter::kRejections, 100);
  sink.begin_frame(1, 60.0);
  add(Counter::kRejections, 4);
  const FrameTrace frame = sink.end_frame();
  EXPECT_EQ(frame.counters[static_cast<std::size_t>(Counter::kRejections)], 4u);

  const FrameTrace& total = sink.aggregate();
  EXPECT_EQ(total.counters[static_cast<std::size_t>(Counter::kRejections)], 7u);
  EXPECT_EQ(total.frame, 2u);
}

TEST(ObsBasics, StageTimerIsMonotoneAndAdditive) {
  TraceSink sink;
  Activation guard(sink);
  sink.begin_frame(0, 0.0);
  {
    StageTimer timer(Stage::kPacking);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  {
    StageTimer timer(Stage::kPacking);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const FrameTrace frame = sink.end_frame();
  const std::uint64_t ns = frame.stage_ns[static_cast<std::size_t>(Stage::kPacking)];
  // Two 2 ms sleeps: at least 4 ms of recorded stage time.
  EXPECT_GE(ns, 4'000'000u);
}

TEST(ObsBasics, ScopedTimerAccumulatesIntoCallerVariable) {
  std::uint64_t ns = 0;
  {
    ScopedTimer timer(ns);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const std::uint64_t first = ns;
  EXPECT_GE(first, 1'000'000u);
  {
    ScopedTimer timer(ns);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GT(ns, first);  // additive, monotone
}

TEST(ObsThreading, CounterMergeAcrossWorkersIsExact) {
  TraceSink sink;
  Activation guard(sink);
  constexpr std::size_t kItems = 10'000;
  sink.begin_frame(0, 0.0);
  ThreadPool::shared().parallel_for(0, kItems, 64, [](std::size_t i) {
    add(Counter::kProposals);
    add(Counter::kPreferencePairs, 2);
    gauge_max(Gauge::kProfilePairsPeak, i + 1);
  });
  const FrameTrace frame = sink.end_frame();
  EXPECT_EQ(frame.counters[static_cast<std::size_t>(Counter::kProposals)], kItems);
  EXPECT_EQ(frame.counters[static_cast<std::size_t>(Counter::kPreferencePairs)],
            2 * kItems);
  EXPECT_EQ(frame.gauges[static_cast<std::size_t>(Gauge::kProfilePairsPeak)], kItems);
}

TEST(ObsThreading, SecondSinkGetsFreshBindings) {
  // Workers bound to a dead sink's epoch must rebind to the new sink,
  // not write through stale pointers.
  constexpr std::size_t kItems = 1'000;
  {
    TraceSink first;
    Activation guard(first);
    first.begin_frame(0, 0.0);
    ThreadPool::shared().parallel_for(0, kItems, 64,
                                      [](std::size_t) { add(Counter::kProposals); });
    first.end_frame();
  }
  TraceSink second;
  Activation guard(second);
  second.begin_frame(0, 0.0);
  ThreadPool::shared().parallel_for(0, kItems, 64,
                                    [](std::size_t) { add(Counter::kProposals); });
  const FrameTrace frame = second.end_frame();
  EXPECT_EQ(frame.counters[static_cast<std::size_t>(Counter::kProposals)], kItems);
}

TEST(ObsAggregate, SumsCountersAndMaxesGauges) {
  FrameTrace a;
  a.frame = 0;
  a.wall_ms = 1.5;
  a.assignments = 2;
  a.counters[0] = 10;
  a.gauges[0] = 5;
  a.stage_ns[0] = 100;
  FrameTrace b;
  b.frame = 1;
  b.wall_ms = 2.5;
  b.assignments = 3;
  b.counters[0] = 7;
  b.gauges[0] = 9;
  b.stage_ns[0] = 50;

  const FrameTrace total = aggregate_frames({a, b});
  EXPECT_EQ(total.frame, 2u);
  EXPECT_DOUBLE_EQ(total.wall_ms, 4.0);
  EXPECT_EQ(total.assignments, 5u);
  EXPECT_EQ(total.counters[0], 17u);
  EXPECT_EQ(total.gauges[0], 9u);
  EXPECT_EQ(total.stage_ns[0], 150u);
}

TEST(ObsRetention, MaxFramesCapsRecordsButNotAggregate) {
  TraceSink sink(TraceOptions{.enabled = true, .per_frame = true, .max_frames = 2});
  Activation guard(sink);
  for (std::uint64_t f = 0; f < 5; ++f) {
    sink.begin_frame(f, static_cast<double>(f));
    add(Counter::kProposals);
    sink.end_frame();
  }
  EXPECT_EQ(sink.frames().size(), 2u);
  EXPECT_EQ(sink.frames_recorded(), 5u);
  EXPECT_EQ(sink.aggregate().counters[static_cast<std::size_t>(Counter::kProposals)], 5u);
}

TEST(ObsRetention, PerFrameOffKeepsOnlyAggregate) {
  TraceSink sink(TraceOptions{.enabled = true, .per_frame = false});
  Activation guard(sink);
  sink.begin_frame(0, 0.0);
  sink.end_frame();
  EXPECT_TRUE(sink.frames().empty());
  EXPECT_EQ(sink.frames_recorded(), 1u);
}

TEST(ObsNames, StableAndDistinct) {
  EXPECT_EQ(stage_name(Stage::kProfileBuild), "profile_build");
  EXPECT_EQ(counter_name(Counter::kExactFallbacks), "exact_fallbacks");
  EXPECT_EQ(gauge_name(Gauge::kPendingPeak), "pending_peak");
  for (std::size_t i = 0; i < kStageCount; ++i) {
    for (std::size_t j = i + 1; j < kStageCount; ++j) {
      EXPECT_NE(stage_name(static_cast<Stage>(i)), stage_name(static_cast<Stage>(j)));
    }
  }
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    for (std::size_t j = i + 1; j < kCounterCount; ++j) {
      EXPECT_NE(counter_name(static_cast<Counter>(i)),
                counter_name(static_cast<Counter>(j)));
    }
  }
  for (std::size_t i = 0; i < kGaugeCount; ++i) {
    for (std::size_t j = i + 1; j < kGaugeCount; ++j) {
      EXPECT_NE(gauge_name(static_cast<Gauge>(i)), gauge_name(static_cast<Gauge>(j)));
    }
  }
}

}  // namespace
}  // namespace o2o::obs
