// FrameTrace persistence: the JSON writer/reader round-trip must be
// exact (FrameTrace's defaulted operator== compares every field,
// including the doubles bit-for-bit), and the CSV/summary writers must
// cover every stage, counter, and gauge.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "obs/obs.h"
#include "sim/report_io.h"

namespace o2o::sim {
namespace {

std::vector<obs::FrameTrace> sample_frames() {
  std::vector<obs::FrameTrace> frames;
  obs::FrameTrace a;
  a.frame = 0;
  a.now_seconds = 0.0;
  a.wall_ms = 1.25;
  a.idle_taxis = 12;
  a.busy_taxis = 3;
  a.pending_requests = 7;
  a.assignments = 5;
  for (std::size_t i = 0; i < obs::kStageCount; ++i) a.stage_ns[i] = 1000 * (i + 1);
  for (std::size_t i = 0; i < obs::kCounterCount; ++i) a.counters[i] = 10 * i + 1;
  for (std::size_t i = 0; i < obs::kGaugeCount; ++i) a.gauges[i] = 100 * i + 7;
  frames.push_back(a);

  obs::FrameTrace b;
  b.frame = 1;
  // Deliberately awkward doubles: %.17g must preserve them exactly.
  b.now_seconds = 60.000000000000014;
  b.wall_ms = 0.1 + 0.2;
  b.counters[static_cast<std::size_t>(obs::Counter::kExactFallbacks)] = 3;
  frames.push_back(b);
  return frames;
}

TEST(TraceJson, RoundTripIsExact) {
  const std::vector<obs::FrameTrace> frames = sample_frames();
  std::stringstream stream;
  write_frame_traces_json(stream, frames);
  const std::vector<obs::FrameTrace> restored = read_frame_traces_json(stream);
  ASSERT_EQ(restored.size(), frames.size());
  for (std::size_t i = 0; i < frames.size(); ++i) {
    EXPECT_EQ(restored[i], frames[i]) << "frame " << i;
  }
}

TEST(TraceJson, EmptyArrayRoundTrips) {
  std::stringstream stream;
  write_frame_traces_json(stream, {});
  EXPECT_TRUE(read_frame_traces_json(stream).empty());
}

TEST(TraceJson, UnknownKeysAreIgnored) {
  std::istringstream in(R"([{"frame": 4, "future_field": 1.5,
      "future_map": {"x": 1, "y": 2},
      "counters": {"proposals": 9, "not_a_counter": 3}}])");
  const auto restored = read_frame_traces_json(in);
  ASSERT_EQ(restored.size(), 1u);
  EXPECT_EQ(restored[0].frame, 4u);
  EXPECT_EQ(restored[0].counters[static_cast<std::size_t>(obs::Counter::kProposals)], 9u);
}

TEST(TraceJson, MalformedInputThrows) {
  std::istringstream in("[{\"frame\": }]");
  EXPECT_THROW(read_frame_traces_json(in), std::runtime_error);
  std::istringstream not_an_array("{\"frame\": 1}");
  EXPECT_THROW(read_frame_traces_json(not_an_array), std::runtime_error);
}

TEST(TraceJson, SinkFramesRoundTripThroughExport) {
  // End-to-end: frames produced by a real sink survive the export.
  obs::TraceSink sink;
  obs::Activation guard(sink);
  for (std::uint64_t f = 0; f < 3; ++f) {
    sink.begin_frame(f, 60.0 * static_cast<double>(f));
    obs::add(obs::Counter::kProposals, f + 1);
    obs::gauge_max(obs::Gauge::kPendingPeak, 10 * f);
    sink.set_frame_context(f, f + 1, f + 2);
    sink.add_assignments(f);
    sink.end_frame();
  }
  std::stringstream stream;
  write_frame_traces_json(stream, sink.frames());
  EXPECT_EQ(read_frame_traces_json(stream), sink.frames());
}

TEST(TraceCsv, HeaderCoversEveryColumnAndRowsMatch) {
  const std::vector<obs::FrameTrace> frames = sample_frames();
  std::stringstream stream;
  write_frame_traces_csv(stream, frames);
  std::string header;
  ASSERT_TRUE(std::getline(stream, header));
  // 7 context columns + stages + counters + gauges.
  const std::size_t expected_columns =
      7 + obs::kStageCount + obs::kCounterCount + obs::kGaugeCount;
  std::size_t commas = 0;
  for (const char c : header) commas += c == ',' ? 1 : 0;
  EXPECT_EQ(commas + 1, expected_columns);
  EXPECT_NE(header.find("profile_build_ns"), std::string::npos);
  EXPECT_NE(header.find("exact_fallbacks"), std::string::npos);
  EXPECT_NE(header.find("pending_peak"), std::string::npos);

  std::size_t rows = 0;
  std::string line;
  while (std::getline(stream, line)) ++rows;
  EXPECT_EQ(rows, frames.size());
}

TEST(TraceSummary, MentionsStagesCountersAndTotals) {
  const std::vector<obs::FrameTrace> frames = sample_frames();
  std::stringstream stream;
  write_trace_summary(stream, frames);
  const std::string text = stream.str();
  EXPECT_NE(text.find("2 frames"), std::string::npos);
  EXPECT_NE(text.find("profile_build"), std::string::npos);
  EXPECT_NE(text.find("exact_fallbacks"), std::string::npos);
  EXPECT_NE(text.find("pending_peak"), std::string::npos);
}

}  // namespace
}  // namespace o2o::sim
