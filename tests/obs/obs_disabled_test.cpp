// This TU is compiled with -DO2O_OBS_DISABLED (see tests/CMakeLists.txt)
// and links against the normally-built libraries: the hot-path API must
// collapse to free no-ops here while the rest of the binary keeps the
// live implementation. The inline-namespace split makes that mix
// ODR-clean.
#include "obs/obs.h"

#include <gtest/gtest.h>

namespace o2o::obs {
namespace {

static_assert(!compile_time_enabled(),
              "this TU must be built with -DO2O_OBS_DISABLED");
// The disabled StageTimer carries no clock state at all.
static_assert(sizeof(StageTimer) == 1);
static_assert(sizeof(ScopedTimer) == 1);

TEST(ObsDisabled, HotPathIsInertEvenWithAnActiveSink) {
  TraceSink sink;
  Activation guard(sink);
  sink.begin_frame(0, 0.0);
  // All of these compile to nothing in this TU; the sink sees zeroes.
  add(Counter::kProposals, 1000);
  gauge_max(Gauge::kPendingPeak, 42);
  add_stage_ns(Stage::kDispatch, 1'000'000);
  std::uint64_t scoped_ns = 0;
  {
    StageTimer timer(Stage::kDispatch);
    ScopedTimer scoped(scoped_ns);
  }
  EXPECT_EQ(scoped_ns, 0u);
  const FrameTrace frame = sink.end_frame();
  EXPECT_EQ(frame.counters[static_cast<std::size_t>(Counter::kProposals)], 0u);
  EXPECT_EQ(frame.gauges[static_cast<std::size_t>(Gauge::kPendingPeak)], 0u);
  EXPECT_EQ(frame.stage_ns[static_cast<std::size_t>(Stage::kDispatch)], 0u);
}

TEST(ObsDisabled, TracingReportsInactive) {
  TraceSink sink;
  Activation guard(sink);
  // The sink is installed (sink-side bookkeeping still works)...
  EXPECT_EQ(active_sink(), &sink);
  // ...but the compile-time-disabled hot path reports inactive.
  EXPECT_FALSE(tracing_active());
}

}  // namespace
}  // namespace o2o::obs
