// The observability layer must be a pure observer: running the same
// simulation with tracing on and off has to produce bit-identical
// matchings and reports. Covers both the non-sharing and the sharing
// dispatcher (the latter exercises thread-local accumulation from the
// parallel grouping/preference paths), built through the unified
// DispatchConfig factories.
#include <gtest/gtest.h>

#include <memory>
#include <string_view>

#include "core/dispatch_config.h"
#include "obs/obs.h"
#include "sim/simulator.h"
#include "trace/fleet.h"
#include "trace/synthetic.h"

namespace o2o::sim {
namespace {

const geo::EuclideanOracle kOracle;

trace::Trace small_city_trace() {
  trace::CityModel model = trace::CityModel::boston();
  model.base_rate_per_hour = 150.0;
  trace::GenerationOptions options;
  options.duration_seconds = 3600.0;
  options.start_hour = 8.0;
  options.seed = 90210;
  options.max_seats = 2;
  return trace::generate(model, options);
}

std::vector<trace::Taxi> small_fleet() {
  trace::FleetOptions options;
  options.taxi_count = 25;
  options.seed = 5;
  return trace::make_fleet(geo::Rect{{-10, -10}, {10, 10}}, options);
}

DispatchConfig tuned_config() {
  return DispatchConfig{}
      .with_passenger_threshold_km(8.0)
      .with_taxi_threshold_score(6.0)
      .with_detour_threshold_km(5.0)
      .with_enroute_extension(true);
}

SimulationReport run(Dispatcher& dispatcher, obs::TraceSink* sink) {
  SimulatorConfig config;
  config.cancel_timeout_seconds = 1800.0;
  config.trace_sink = sink;
  const trace::Trace city = small_city_trace();
  Simulator simulator(city, small_fleet(), kOracle, config);
  return simulator.run(dispatcher);
}

void expect_identical(const SimulationReport& a, const SimulationReport& b) {
  EXPECT_EQ(a.served, b.served);
  EXPECT_EQ(a.cancelled, b.cancelled);
  EXPECT_DOUBLE_EQ(a.total_taxi_distance_km, b.total_taxi_distance_km);
  ASSERT_EQ(a.requests.size(), b.requests.size());
  for (std::size_t i = 0; i < a.requests.size(); ++i) {
    const RequestRecord& ra = a.requests[i];
    const RequestRecord& rb = b.requests[i];
    EXPECT_EQ(ra.id, rb.id);
    // Bit-identical matchings: every request dispatched at the same
    // frame, picked up and dropped off at exactly the same instants.
    EXPECT_EQ(ra.dispatch_time, rb.dispatch_time) << "request " << ra.id;
    EXPECT_EQ(ra.pickup_time, rb.pickup_time) << "request " << ra.id;
    EXPECT_EQ(ra.dropoff_time, rb.dropoff_time) << "request " << ra.id;
    EXPECT_EQ(ra.shared, rb.shared) << "request " << ra.id;
    EXPECT_EQ(ra.cancelled, rb.cancelled) << "request " << ra.id;
    EXPECT_EQ(ra.passenger_dissatisfaction_km, rb.passenger_dissatisfaction_km);
  }
}

void run_differential(std::string_view kind) {
  const DispatchConfig config = tuned_config();
  const auto untraced = make_dispatcher(kind, config);
  const auto traced = make_dispatcher(kind, config);
  ASSERT_NE(untraced, nullptr);
  ASSERT_NE(traced, nullptr);

  const SimulationReport baseline = run(*untraced, nullptr);
  obs::TraceSink sink;
  const SimulationReport observed = run(*traced, &sink);

  expect_identical(baseline, observed);
  // And the sink really was live: one trace per simulated frame, with
  // the dispatch stage and the assignment totals populated.
  EXPECT_GT(sink.frames_recorded(), 0u);
  const obs::FrameTrace& total = sink.aggregate();
  EXPECT_EQ(total.assignments, static_cast<std::uint64_t>(observed.served));
  EXPECT_GT(total.stage_ns[static_cast<std::size_t>(obs::Stage::kDispatch)], 0u);
  EXPECT_GT(total.counters[static_cast<std::size_t>(obs::Counter::kProposals)], 0u);
}

TEST(DifferentialTrace, NonSharingStableIsUnaffectedByTracing) {
  run_differential("nstd-p");
}

TEST(DifferentialTrace, SharingStableIsUnaffectedByTracing) {
  run_differential("std-p");
}

}  // namespace
}  // namespace o2o::sim
