// DispatchConfig: defaults must mirror the legacy option structs, the
// fluent setters must land in the right sub-struct, validate() must
// return typed errors, and the factories must build the four stable
// dispatchers with the side pinned by name.
#include "core/dispatch_config.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <string>

namespace o2o {
namespace {

bool has_error(const std::vector<ConfigError>& errors, ConfigField field) {
  return std::any_of(errors.begin(), errors.end(),
                     [field](const ConfigError& e) { return e.field == field; });
}

TEST(DispatchConfig, DefaultsMatchLegacyStructs) {
  const DispatchConfig config;
  const core::StableDispatcherOptions legacy_stable;
  const core::SharingStableDispatcherOptions legacy_sharing;

  const core::StableDispatcherOptions stable = config.stable_options();
  EXPECT_EQ(stable.preference.alpha, legacy_stable.preference.alpha);
  EXPECT_EQ(stable.preference.beta, legacy_stable.preference.beta);
  EXPECT_EQ(stable.preference.passenger_threshold_km,
            legacy_stable.preference.passenger_threshold_km);
  EXPECT_EQ(stable.preference.taxi_threshold_score,
            legacy_stable.preference.taxi_threshold_score);
  EXPECT_EQ(stable.preference.list_cap, legacy_stable.preference.list_cap);
  EXPECT_EQ(stable.preference.spatial_prune, legacy_stable.preference.spatial_prune);
  EXPECT_EQ(stable.side, legacy_stable.side);
  EXPECT_EQ(stable.taxi_side_via_enumeration, legacy_stable.taxi_side_via_enumeration);
  EXPECT_EQ(stable.enumeration_cap, legacy_stable.enumeration_cap);

  const core::SharingStableDispatcherOptions sharing = config.sharing_options();
  EXPECT_EQ(sharing.enroute_extension, legacy_sharing.enroute_extension);
  EXPECT_EQ(sharing.params.grouping.detour_threshold_km,
            legacy_sharing.params.grouping.detour_threshold_km);
  EXPECT_EQ(sharing.params.grouping.max_group_size,
            legacy_sharing.params.grouping.max_group_size);
  EXPECT_EQ(sharing.params.packing, legacy_sharing.params.packing);
  EXPECT_EQ(sharing.params.objective, legacy_sharing.params.objective);
  EXPECT_EQ(sharing.params.taxi_seats, legacy_sharing.params.taxi_seats);
  EXPECT_EQ(sharing.params.exact_max_sets, legacy_sharing.params.exact_max_sets);

  EXPECT_FALSE(config.trace().enabled);
  EXPECT_TRUE(config.validate().empty());
}

TEST(DispatchConfig, FluentSettersReachEverySubStruct) {
  const DispatchConfig config = DispatchConfig{}
                                    .with_alpha(2.0)
                                    .with_beta(0.5)
                                    .with_passenger_threshold_km(7.5)
                                    .with_taxi_threshold_score(3.0)
                                    .with_list_cap(16)
                                    .with_spatial_prune(false)
                                    .with_proposal_side(core::ProposalSide::kTaxis)
                                    .with_taxi_side_via_enumeration(true)
                                    .with_enumeration_cap(128)
                                    .with_detour_threshold_km(4.0)
                                    .with_max_group_size(2)
                                    .with_pickup_radius_km(9.0)
                                    .with_require_saving(false)
                                    .with_parallel_grouping(false)
                                    .with_packing_solver(core::PackingSolver::kGreedy)
                                    .with_packing_objective(core::PackingObjective::kRiders)
                                    .with_taxi_seats(6)
                                    .with_candidate_taxis_per_unit(12)
                                    .with_exact_max_sets(500)
                                    .with_enroute_extension(true)
                                    .with_tracing(true);

  EXPECT_EQ(config.preference().alpha, 2.0);
  EXPECT_EQ(config.preference().beta, 0.5);
  EXPECT_EQ(config.preference().passenger_threshold_km, 7.5);
  EXPECT_EQ(config.preference().taxi_threshold_score, 3.0);
  EXPECT_EQ(config.preference().list_cap, 16u);
  EXPECT_FALSE(config.preference().spatial_prune);
  EXPECT_EQ(config.proposal_side(), core::ProposalSide::kTaxis);
  EXPECT_TRUE(config.taxi_side_via_enumeration());
  EXPECT_EQ(config.enumeration_cap(), 128u);
  EXPECT_EQ(config.grouping().detour_threshold_km, 4.0);
  EXPECT_EQ(config.grouping().max_group_size, 2);
  EXPECT_EQ(config.grouping().pickup_radius_km, 9.0);
  EXPECT_FALSE(config.grouping().require_saving);
  EXPECT_FALSE(config.grouping().parallel);
  EXPECT_EQ(config.sharing_params().packing, core::PackingSolver::kGreedy);
  EXPECT_EQ(config.sharing_params().objective, core::PackingObjective::kRiders);
  EXPECT_EQ(config.sharing_params().taxi_seats, 6);
  EXPECT_EQ(config.sharing_params().candidate_taxis_per_unit, 12u);
  EXPECT_EQ(config.sharing_params().exact_max_sets, 500u);
  EXPECT_TRUE(config.enroute_extension());
  EXPECT_TRUE(config.trace().enabled);
  EXPECT_TRUE(config.validate().empty());

  // Projections carry the same values to the legacy structs.
  EXPECT_EQ(config.stable_options().enumeration_cap, 128u);
  EXPECT_TRUE(config.sharing_options().enroute_extension);
}

TEST(DispatchConfig, ValidateFlagsBadFieldsWithTypedErrors) {
  const auto errors = DispatchConfig{}
                          .with_alpha(-1.0)
                          .with_beta(std::numeric_limits<double>::quiet_NaN())
                          .with_passenger_threshold_km(0.0)
                          .with_detour_threshold_km(-2.0)
                          .with_max_group_size(0)
                          .with_pickup_radius_km(-1.0)
                          .with_taxi_seats(0)
                          .validate();
  EXPECT_TRUE(has_error(errors, ConfigField::kAlpha));
  EXPECT_TRUE(has_error(errors, ConfigField::kBeta));
  EXPECT_TRUE(has_error(errors, ConfigField::kPassengerThresholdKm));
  EXPECT_TRUE(has_error(errors, ConfigField::kDetourThresholdKm));
  EXPECT_TRUE(has_error(errors, ConfigField::kMaxGroupSize));
  EXPECT_TRUE(has_error(errors, ConfigField::kPickupRadiusKm));
  EXPECT_TRUE(has_error(errors, ConfigField::kTaxiSeats));
  for (const ConfigError& error : errors) {
    EXPECT_FALSE(error.message.empty());
    EXPECT_NE(config_field_name(error.field), "unknown");
  }
}

TEST(DispatchConfig, ValidateCrossFieldRules) {
  EXPECT_TRUE(has_error(
      DispatchConfig{}.with_taxi_seats(2).with_max_group_size(3).validate(),
      ConfigField::kTaxiSeats));
  EXPECT_TRUE(has_error(DispatchConfig{}
                            .with_taxi_side_via_enumeration(true)
                            .with_enumeration_cap(0)
                            .validate(),
                        ConfigField::kEnumerationCap));
  EXPECT_TRUE(has_error(DispatchConfig{}
                            .with_packing_solver(core::PackingSolver::kExact)
                            .with_exact_max_sets(0)
                            .validate(),
                        ConfigField::kExactMaxSets));
  EXPECT_TRUE(has_error(
      DispatchConfig{}
          .with_tracing(obs::TraceOptions{.enabled = true, .per_frame = true, .max_frames = 0})
          .validate(),
      ConfigField::kTraceMaxFrames));
  // +inf thresholds stay legal ("no cut-off" is the documented default).
  EXPECT_TRUE(DispatchConfig{}
                  .with_passenger_threshold_km(std::numeric_limits<double>::infinity())
                  .with_pickup_radius_km(std::numeric_limits<double>::infinity())
                  .validate()
                  .empty());
}

TEST(DispatchConfig, EngineAccelerationKnobsReachGrouping) {
  const DispatchConfig config = DispatchConfig{}
                                    .with_simd_prefilter(false)
                                    .with_direction_cone(false)
                                    .with_cross_frame_cache(false);
  EXPECT_FALSE(config.grouping().simd_prefilter);
  EXPECT_FALSE(config.grouping().direction_cone);
  EXPECT_FALSE(config.grouping().cross_frame_cache);
  EXPECT_TRUE(config.validate().empty());

  // Defaults keep all three accelerations on.
  const DispatchConfig defaults;
  EXPECT_TRUE(defaults.grouping().simd_prefilter);
  EXPECT_TRUE(defaults.grouping().direction_cone);
  EXPECT_TRUE(defaults.grouping().cross_frame_cache);
}

TEST(DispatchConfig, CandidateTaxisPerUnitRejectsNegativeCastSentinel) {
  // A negative int cast to size_t lands far past 2^32-1; validate()
  // flags it instead of silently treating it as "huge cap".
  EXPECT_TRUE(has_error(DispatchConfig{}
                            .with_candidate_taxis_per_unit(
                                static_cast<std::size_t>(static_cast<long long>(-1)))
                            .validate(),
                        ConfigField::kCandidateTaxisPerUnit));
  // 0 is the documented uncapped sentinel; plain caps stay legal.
  EXPECT_TRUE(DispatchConfig{}.with_candidate_taxis_per_unit(0).validate().empty());
  EXPECT_TRUE(DispatchConfig{}.with_candidate_taxis_per_unit(64).validate().empty());
}

TEST(DispatchConfig, FieldNamesAreStable) {
  EXPECT_EQ(config_field_name(ConfigField::kAlpha), "alpha");
  EXPECT_EQ(config_field_name(ConfigField::kTraceMaxFrames), "trace_max_frames");
}

TEST(DispatchConfigFactories, FourDispatchersWithPinnedSides) {
  const DispatchConfig config;  // side left at default (passengers)
  EXPECT_EQ(make_nstd_p(config)->name(), "NSTD-P");
  EXPECT_EQ(make_nstd_t(config)->name(), "NSTD-T");
  EXPECT_EQ(make_std_p(config)->name(), "STD-P");
  EXPECT_EQ(make_std_t(config)->name(), "STD-T");

  // The factory pins the side even when the config says otherwise.
  const DispatchConfig taxis = DispatchConfig{}.with_proposal_side(core::ProposalSide::kTaxis);
  EXPECT_EQ(make_nstd_p(taxis)->name(), "NSTD-P");
  EXPECT_EQ(make_std_p(taxis)->name(), "STD-P");

  // The en-route extension shows up in the sharing dispatcher's name.
  EXPECT_EQ(make_std_p(DispatchConfig{}.with_enroute_extension(true))->name(), "STD-P+");
}

TEST(DispatchConfig, ServiceKnobsValidate) {
  EXPECT_TRUE(DispatchConfig{}.with_pipeline_depth(1).validate().empty());
  EXPECT_TRUE(DispatchConfig{}.with_pipeline_depth(1024).validate().empty());
  EXPECT_FALSE(DispatchConfig{}.with_pipeline_depth(0).validate().empty());
  EXPECT_FALSE(DispatchConfig{}.with_pipeline_depth(1025).validate().empty());

  EXPECT_TRUE(DispatchConfig{}.with_ingest_capacity(2).validate().empty());
  EXPECT_TRUE(DispatchConfig{}.with_ingest_capacity(1u << 20).validate().empty());
  // Capacity must be a power of two: the ring masks positions.
  EXPECT_FALSE(DispatchConfig{}.with_ingest_capacity(3).validate().empty());
  EXPECT_FALSE(DispatchConfig{}.with_ingest_capacity(1000).validate().empty());
  EXPECT_FALSE(DispatchConfig{}.with_ingest_capacity(1).validate().empty());
  EXPECT_FALSE(DispatchConfig{}.with_ingest_capacity(1u << 21).validate().empty());
}

TEST(DispatchConfig, DescribeIsAStableCompleteSnapshot) {
  const auto described = DispatchConfig{}.describe();
  ASSERT_FALSE(described.empty());
  EXPECT_EQ(described.front().first, "alpha");

  std::set<std::string> keys;
  for (const auto& [key, value] : described) {
    EXPECT_TRUE(keys.insert(key).second) << "duplicate key " << key;
    EXPECT_FALSE(value.empty()) << key;
  }
  for (const char* expected :
       {"passenger_threshold_km", "detour_threshold_km", "packing_solver",
        "frame_seconds", "incremental_grid", "road_network", "trace_enabled",
        "pipeline_depth", "ingest_capacity"}) {
    EXPECT_TRUE(keys.count(expected) != 0) << expected;
  }

  // Two identical configs describe identically; order included.
  EXPECT_EQ(described, DispatchConfig{}.describe());
}

TEST(DispatchConfig, DescribeReflectsTheConfiguredValues) {
  const auto described = DispatchConfig{}
                             .with_passenger_threshold_km(7.5)
                             .with_packing_solver(core::PackingSolver::kGreedy)
                             .with_incremental_grid(true)
                             .with_pipeline_depth(8)
                             .with_ingest_capacity(256)
                             .describe();
  const auto value_of = [&described](std::string_view key) -> std::string {
    for (const auto& [k, v] : described) {
      if (k == key) return v;
    }
    return "<missing>";
  };
  EXPECT_EQ(value_of("passenger_threshold_km"), "7.5");
  EXPECT_EQ(value_of("packing_solver"), "greedy");
  EXPECT_EQ(value_of("incremental_grid"), "true");
  EXPECT_EQ(value_of("pipeline_depth"), "8");
  EXPECT_EQ(value_of("ingest_capacity"), "256");
  EXPECT_EQ(value_of("road_network"), "none");
}

TEST(DispatchConfigFactories, NameBasedLookup) {
  EXPECT_EQ(make_dispatcher("nstd-p")->name(), "NSTD-P");
  EXPECT_EQ(make_dispatcher("NSTD_T")->name(), "NSTD-T");
  EXPECT_EQ(make_dispatcher("Std-P")->name(), "STD-P");
  EXPECT_EQ(make_dispatcher("std_t")->name(), "STD-T");
  EXPECT_EQ(make_dispatcher("greedy"), nullptr);
  EXPECT_EQ(make_dispatcher(""), nullptr);
}

}  // namespace
}  // namespace o2o
