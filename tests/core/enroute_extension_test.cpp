// The STD+ en-route extension: unserved requests may join busy taxis
// when both sides would agree to the insertion.
#include <gtest/gtest.h>

#include "core/dispatchers.h"
#include "sim/simulator.h"

namespace o2o::core {
namespace {

const geo::EuclideanOracle kOracle;

trace::Request make_request(trace::RequestId id, double time, geo::Point pickup,
                            geo::Point dropoff) {
  trace::Request request;
  request.id = id;
  request.time_seconds = time;
  request.pickup = pickup;
  request.dropoff = dropoff;
  return request;
}

sim::BusyTaxiView busy_taxi_on_corridor() {
  sim::BusyTaxiView view;
  view.taxi = {0, {3.0, 0.0}, 4};
  view.remaining_stops = {routing::Stop{90, false, {12.0, 0.0}}};  // rider 90 onboard
  view.onboard = {90};
  view.seats_in_use = 1;
  view.route_request_seats = {{90, 1}};
  return view;
}

SharingStableDispatcherOptions extended_options() {
  SharingStableDispatcherOptions options;
  options.params.preference.passenger_threshold_km = 10.0;
  options.params.preference.taxi_threshold_score = 2.0;
  options.params.grouping.detour_threshold_km = 5.0;
  options.enroute_extension = true;
  return options;
}

TEST(EnrouteExtension, NameGainsAPlus) {
  EXPECT_EQ(SharingStableDispatcher(extended_options(), FromConfig{}).name(), "STD-P+");
  SharingStableDispatcherOptions options = extended_options();
  options.enroute_extension = false;
  EXPECT_EQ(SharingStableDispatcher(options, FromConfig{}).name(), "STD-P");
}

TEST(EnrouteExtension, UnservedRequestJoinsABusyTaxi) {
  // No idle taxis at all: the plain dispatcher serves nothing; the
  // extension inserts the corridor-aligned request into the busy taxi.
  const std::vector<sim::BusyTaxiView> busy{busy_taxi_on_corridor()};
  const std::vector<trace::Request> pending{
      make_request(1, 0.0, {5.0, 0.0}, {9.0, 0.0})};

  sim::DispatchContext context;
  context.busy_taxis = busy;
  context.pending = pending;
  context.oracle = &kOracle;

  SharingStableDispatcherOptions plain = extended_options();
  plain.enroute_extension = false;
  EXPECT_TRUE(SharingStableDispatcher(plain, FromConfig{}).dispatch(context).empty());

  SharingStableDispatcher extended(extended_options(), FromConfig{});
  const auto assignments = extended.dispatch(context);
  ASSERT_EQ(assignments.size(), 1u);
  EXPECT_EQ(assignments[0].taxi, 0);
  EXPECT_EQ(assignments[0].requests, (std::vector<trace::RequestId>{1}));
  // The onboard rider's drop-off survives on the emitted route.
  bool drops_onboard = false;
  for (const auto& stop : assignments[0].route.stops) {
    drops_onboard |= (stop.request == 90 && !stop.is_pickup);
  }
  EXPECT_TRUE(drops_onboard);
  EXPECT_TRUE(routing::respects_precedence(assignments[0].route, {90}));
}

TEST(EnrouteExtension, DriverRefusesAMoneyLosingInsertion) {
  // The request is perpendicular to the corridor: big added distance,
  // small fare -> marginal score above the driver threshold.
  const std::vector<sim::BusyTaxiView> busy{busy_taxi_on_corridor()};
  const std::vector<trace::Request> pending{
      make_request(1, 0.0, {7.0, 6.0}, {7.0, 7.0})};

  sim::DispatchContext context;
  context.busy_taxis = busy;
  context.pending = pending;
  context.oracle = &kOracle;

  SharingStableDispatcher extended(extended_options(), FromConfig{});
  EXPECT_TRUE(extended.dispatch(context).empty());
}

TEST(EnrouteExtension, OnboardRiderDetourBoundBlocksInsertion) {
  // Corridor-crossing request with a juicy fare: the driver would take
  // it, but it would detour the onboard rider beyond θ.
  const std::vector<sim::BusyTaxiView> busy{busy_taxi_on_corridor()};
  const std::vector<trace::Request> pending{
      make_request(1, 0.0, {7.0, 8.0}, {7.0, 28.0})};

  sim::DispatchContext context;
  context.busy_taxis = busy;
  context.pending = pending;
  context.oracle = &kOracle;

  SharingStableDispatcherOptions options = extended_options();
  options.params.grouping.detour_threshold_km = 5.0;
  SharingStableDispatcher extended(options, FromConfig{});
  // Detour for onboard rider 90: route must pass (7,8)->(7,28) before
  // (12,0): ride inflates far beyond 5 km.
  EXPECT_TRUE(extended.dispatch(context).empty());
}

TEST(EnrouteExtension, RunsInsideTheSimulator) {
  // End to end: one taxi, two corridor rides arriving while the first is
  // in progress -- only the extended dispatcher serves the second.
  std::vector<trace::Request> requests{make_request(0, 0.0, {1, 0}, {12, 0}),
                                       make_request(1, 240.0, {6, 0}, {10, 0})};
  const trace::Trace city("t", {{-20, -20}, {20, 20}}, std::move(requests));
  const std::vector<trace::Taxi> fleet{{0, {0, 0}, 4}};

  sim::SimulatorConfig config;
  config.speed_kmh = 60.0;
  // Short patience: the first ride ends at t = 720 s, so the second rider
  // (arriving at 240 s) cancels before any idle taxi appears unless the
  // extension inserts them en route.
  config.cancel_timeout_seconds = 300.0;

  SharingStableDispatcherOptions plain = extended_options();
  plain.enroute_extension = false;
  SharingStableDispatcher plain_dispatcher(plain, FromConfig{});
  sim::Simulator plain_sim(city, fleet, kOracle, config);
  const auto plain_report = plain_sim.run(plain_dispatcher);

  SharingStableDispatcher extended_dispatcher(extended_options(), FromConfig{});
  sim::Simulator extended_sim(city, fleet, kOracle, config);
  const auto extended_report = extended_sim.run(extended_dispatcher);

  EXPECT_EQ(plain_report.served, 1u);     // second rider cancels
  EXPECT_EQ(extended_report.served, 2u);  // second rider joins en route
  EXPECT_EQ(extended_report.shared_rides, 1u);
}

}  // namespace
}  // namespace o2o::core
