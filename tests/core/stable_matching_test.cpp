#include "core/stable_matching.h"

#include <gtest/gtest.h>

#include "core/all_stable.h"
#include "tests/core/test_helpers.h"
#include "util/contracts.h"
#include "util/rng.h"

namespace o2o::core {
namespace {

using testing::random_instance;
using testing::random_profile;

const geo::EuclideanOracle kOracle;

// ------------------------------------------------------------- plumbing

TEST(MakeMatching, BuildsTheMirror) {
  const Matching matching = make_matching({1, kDummy, 0}, 3);
  EXPECT_EQ(matching.taxi_to_request, (std::vector<int>{2, 0, kDummy}));
  EXPECT_EQ(matching.matched_count(), 2u);
}

TEST(MakeMatching, RejectsDuplicateTaxi) {
  EXPECT_THROW(make_matching({0, 0}, 2), ContractViolation);
}

TEST(Validity, DetectsUnacceptablePair) {
  const auto profile = PreferenceProfile::from_scores({{kUnacceptable}}, {{1.0}}, 1);
  EXPECT_FALSE(is_valid(profile, make_matching({0}, 1)));
  EXPECT_TRUE(is_valid(profile, make_matching({kDummy}, 1)));
}

TEST(BlockingPairs, FindsTheClassicBlock) {
  // r0 and t0 prefer each other but are matched elsewhere.
  const auto profile = PreferenceProfile::from_scores(
      {{1.0, 2.0}, {1.0, 2.0}},   // both requests prefer taxi 0
      {{1.0, 1.0}, {2.0, 2.0}}, 2);  // both taxis prefer request 0
  const Matching bad = make_matching({1, 0}, 2);
  const auto blocks = blocking_pairs(profile, bad);
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0], (std::pair<std::size_t, std::size_t>{0, 0}));
  EXPECT_FALSE(is_stable(profile, bad));
  EXPECT_TRUE(is_stable(profile, make_matching({0, 1}, 2)));
}

TEST(BlockingPairs, UnmatchedAgentsCanBlock) {
  // One request, one taxi, mutually acceptable, both unmatched: blocking.
  const auto profile = PreferenceProfile::from_scores({{1.0}}, {{1.0}}, 1);
  EXPECT_FALSE(is_stable(profile, make_matching({kDummy}, 1)));
  EXPECT_TRUE(is_stable(profile, make_matching({0}, 1)));
}

TEST(BlockingPairs, MutuallyUnacceptablePairNeverBlocks) {
  const auto profile =
      PreferenceProfile::from_scores({{kUnacceptable}}, {{kUnacceptable}}, 1);
  EXPECT_TRUE(is_stable(profile, make_matching({kDummy}, 1)));
}

// -------------------------------------------------------- Algorithm 1

TEST(GaleShapley, TwoByTwoMatchesTheObviousPairs) {
  // Each request's nearest taxi is distinct: everyone gets their first
  // choice.
  const auto profile = PreferenceProfile::from_scores(
      {{1.0, 9.0}, {9.0, 1.0}}, {{1.0, 9.0}, {9.0, 1.0}}, 2);
  const Matching matching = gale_shapley_requests(profile);
  EXPECT_EQ(matching.request_to_taxi, (std::vector<int>{0, 1}));
}

TEST(GaleShapley, RefusalCascadeSettles) {
  // Both requests want taxi 0; taxi 0 prefers request 1 -> request 0 is
  // bumped to taxi 1.
  const auto profile = PreferenceProfile::from_scores(
      {{1.0, 2.0}, {1.0, 2.0}}, {{2.0, 1.0}, {1.0, 2.0}}, 2);
  const Matching matching = gale_shapley_requests(profile);
  EXPECT_EQ(matching.request_to_taxi, (std::vector<int>{1, 0}));
}

TEST(GaleShapley, UnequalSidesLeaveDummies) {
  const auto profile = PreferenceProfile::from_scores(
      {{1.0}, {2.0}, {3.0}}, {{1.0}, {2.0}, {3.0}}, 1);
  const Matching matching = gale_shapley_requests(profile);
  EXPECT_EQ(matching.matched_count(), 1u);
  EXPECT_EQ(matching.request_to_taxi[0], 0);  // taxi 0 prefers request 0
}

TEST(GaleShapley, Property1TaxiPreferringNoDispatchStaysIdle) {
  // The taxi finds every request unacceptable -> never dispatched.
  const auto profile = PreferenceProfile::from_scores(
      {{1.0}, {1.5}}, {{kUnacceptable}, {kUnacceptable}}, 1);
  const Matching matching = gale_shapley_requests(profile);
  EXPECT_EQ(matching.taxi_to_request[0], kDummy);
  EXPECT_TRUE(is_stable(profile, matching));
}

TEST(GaleShapley, Property1RequestPreferringNoServiceStaysUnserved) {
  const auto profile = PreferenceProfile::from_scores(
      {{kUnacceptable, kUnacceptable}}, {{1.0, 1.0}}, 2);
  const Matching matching = gale_shapley_requests(profile);
  EXPECT_EQ(matching.request_to_taxi[0], kDummy);
  EXPECT_TRUE(is_stable(profile, matching));
}

TEST(GaleShapley, EmptyProfile) {
  const auto profile = PreferenceProfile::from_scores({}, {}, 0);
  const Matching matching = gale_shapley_requests(profile);
  EXPECT_TRUE(matching.request_to_taxi.empty());
}

struct RandomShape {
  std::uint64_t seed;
  std::size_t requests;
  std::size_t taxis;
  double unacceptable;
};

class GaleShapleyRandom : public ::testing::TestWithParam<RandomShape> {};

TEST_P(GaleShapleyRandom, OutputIsAlwaysStableBothSides) {
  const RandomShape shape = GetParam();
  Rng rng(shape.seed);
  for (int trial = 0; trial < 20; ++trial) {
    const auto profile =
        random_profile(rng, shape.requests, shape.taxis, shape.unacceptable);
    const Matching passenger_side = gale_shapley_requests(profile);
    EXPECT_TRUE(is_stable(profile, passenger_side)) << "trial " << trial;
    const Matching taxi_side = gale_shapley_taxis(profile);
    EXPECT_TRUE(is_stable(profile, taxi_side)) << "trial " << trial;
  }
}

TEST_P(GaleShapleyRandom, PassengerOptimalityAgainstBruteForce) {
  const RandomShape shape = GetParam();
  if (shape.requests > 6) GTEST_SKIP() << "brute force bound";
  Rng rng(shape.seed + 1000);
  for (int trial = 0; trial < 10; ++trial) {
    const auto profile =
        random_profile(rng, shape.requests, shape.taxis, shape.unacceptable);
    const Matching mine = gale_shapley_requests(profile);
    const auto all = brute_force_all_stable(profile);
    ASSERT_FALSE(all.empty());
    // Property 2: every request weakly prefers its partner in `mine` to
    // its partner in any stable matching.
    for (const Matching& other : all) {
      for (std::size_t r = 0; r < profile.request_count(); ++r) {
        EXPECT_FALSE(profile.request_prefers(r, other.request_to_taxi[r],
                                             mine.request_to_taxi[r]))
            << "request " << r << " trial " << trial;
      }
    }
  }
}

TEST_P(GaleShapleyRandom, RuralHospitals_SameAgentsMatchedEverywhere) {
  const RandomShape shape = GetParam();
  if (shape.requests > 6) GTEST_SKIP() << "brute force bound";
  Rng rng(shape.seed + 2000);
  for (int trial = 0; trial < 10; ++trial) {
    const auto profile =
        random_profile(rng, shape.requests, shape.taxis, shape.unacceptable);
    const auto all = brute_force_all_stable(profile);
    ASSERT_FALSE(all.empty());
    // Theorem 2 (and its taxi-side dual): the set of unserved requests /
    // undispatched taxis is identical across all stable matchings.
    for (const Matching& other : all) {
      for (std::size_t r = 0; r < profile.request_count(); ++r) {
        EXPECT_EQ(other.request_to_taxi[r] == kDummy,
                  all.front().request_to_taxi[r] == kDummy);
      }
      for (std::size_t t = 0; t < profile.taxi_count(); ++t) {
        EXPECT_EQ(other.taxi_to_request[t] == kDummy,
                  all.front().taxi_to_request[t] == kDummy);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GaleShapleyRandom,
    ::testing::Values(RandomShape{1, 4, 4, 0.0}, RandomShape{2, 5, 3, 0.0},
                      RandomShape{3, 3, 5, 0.0}, RandomShape{4, 5, 5, 0.3},
                      RandomShape{5, 6, 4, 0.5}, RandomShape{6, 4, 6, 0.4},
                      RandomShape{7, 30, 30, 0.2}, RandomShape{8, 50, 20, 0.1},
                      RandomShape{9, 20, 50, 0.6}));

TEST(GaleShapley, GeometricInstanceIsStable) {
  Rng rng(77);
  for (int trial = 0; trial < 10; ++trial) {
    const auto instance = random_instance(rng, 12, 9);
    PreferenceParams params;
    params.passenger_threshold_km = 8.0;
    params.taxi_threshold_score = 4.0;
    const auto profile =
        build_nonsharing_profile(instance.taxis, instance.requests, kOracle, params);
    EXPECT_TRUE(is_stable(profile, gale_shapley_requests(profile)));
    EXPECT_TRUE(is_stable(profile, gale_shapley_taxis(profile)));
  }
}

TEST(GaleShapley, TaxiProposingIsTaxiOptimal) {
  Rng rng(78);
  for (int trial = 0; trial < 10; ++trial) {
    const auto profile = random_profile(rng, 5, 5, 0.3);
    const Matching taxi_side = gale_shapley_taxis(profile);
    for (const Matching& other : brute_force_all_stable(profile)) {
      for (std::size_t t = 0; t < profile.taxi_count(); ++t) {
        EXPECT_FALSE(profile.taxi_prefers(t, other.taxi_to_request[t],
                                          taxi_side.taxi_to_request[t]));
      }
    }
  }
}

}  // namespace
}  // namespace o2o::core
