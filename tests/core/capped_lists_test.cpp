// The list-cap ablation knob: capped preference lists still yield stable
// matchings with respect to the capped profile, and the cap only ever
// removes low-ranked options.
#include <gtest/gtest.h>

#include "core/sharing.h"
#include "core/stable_matching.h"
#include "tests/core/test_helpers.h"
#include "util/rng.h"

namespace o2o::core {
namespace {

using testing::random_instance;

const geo::EuclideanOracle kEuclidean;
const geo::ManhattanOracle kManhattan;

TEST(CappedLists, GaleShapleyStaysStableUnderTheCappedProfile) {
  Rng rng(121);
  for (int trial = 0; trial < 10; ++trial) {
    const auto instance = random_instance(rng, 10, 8);
    PreferenceParams params;
    params.list_cap = 3;
    const auto profile =
        build_nonsharing_profile(instance.taxis, instance.requests, kEuclidean, params);
    EXPECT_TRUE(is_stable(profile, gale_shapley_requests(profile)));
    EXPECT_TRUE(is_stable(profile, gale_shapley_taxis(profile)));
  }
}

TEST(CappedLists, CapTypicallyPushesRequestsDownTheirLists) {
  // NOT a theorem: truncating *another* request's list can in principle
  // free up a taxi and improve this one. Empirically, on geometric
  // instances the cap binds symmetrically and every request lands weakly
  // lower; this seed-pinned regression documents that observed behaviour
  // (the instances are deterministic, so the check cannot flake).
  Rng rng(122);
  for (int trial = 0; trial < 10; ++trial) {
    const auto instance = random_instance(rng, 8, 8);
    PreferenceParams full_params;
    const auto full =
        build_nonsharing_profile(instance.taxis, instance.requests, kEuclidean,
                                 full_params);
    PreferenceParams capped_params;
    capped_params.list_cap = 2;
    const auto capped = build_nonsharing_profile(instance.taxis, instance.requests,
                                                 kEuclidean, capped_params);
    const Matching full_match = gale_shapley_requests(full);
    const Matching capped_match = gale_shapley_requests(capped);
    for (std::size_t r = 0; r < full.request_count(); ++r) {
      // Compare under the *full* profile's ranks.
      EXPECT_FALSE(full.request_prefers(r, capped_match.request_to_taxi[r],
                                        full_match.request_to_taxi[r]))
          << "trial " << trial << " request " << r;
    }
  }
}

TEST(CappedLists, WideCapIsANoOp) {
  Rng rng(123);
  const auto instance = random_instance(rng, 6, 6);
  PreferenceParams full_params;
  PreferenceParams capped_params;
  capped_params.list_cap = 100;
  const auto a =
      build_nonsharing_profile(instance.taxis, instance.requests, kEuclidean, full_params);
  const auto b = build_nonsharing_profile(instance.taxis, instance.requests, kEuclidean,
                                          capped_params);
  EXPECT_EQ(gale_shapley_requests(a).request_to_taxi,
            gale_shapley_requests(b).request_to_taxi);
}

TEST(CappedLists, SharingUnderManhattanOracleIsConsistent) {
  // The whole sharing pipeline must treat the oracle as the single
  // source of distance truth; run it under Manhattan and check the
  // emitted routes' scores match recomputation.
  Rng rng(124);
  std::vector<trace::Taxi> taxis;
  for (int t = 0; t < 5; ++t) {
    taxis.push_back({t, {rng.uniform(0, 10), rng.uniform(0, 10)}, 4});
  }
  std::vector<trace::Request> requests;
  for (int r = 0; r < 8; ++r) {
    trace::Request request;
    request.id = r;
    request.pickup = {rng.uniform(0, 10), rng.uniform(0, 10)};
    request.dropoff = {rng.uniform(0, 10), rng.uniform(0, 10)};
    requests.push_back(request);
  }
  SharingParams params;
  params.grouping.detour_threshold_km = 4.0;
  const SharingOutcome outcome = dispatch_sharing(taxis, requests, kManhattan, params);
  for (const SharedAssignment& assignment : outcome.assignments) {
    double direct_sum = 0.0;
    for (std::size_t index : assignment.request_indices) {
      direct_sum +=
          kManhattan.distance(requests[index].pickup, requests[index].dropoff);
    }
    const double recomputed =
        routing::route_length(assignment.route, kManhattan) - 2.0 * direct_sum;
    EXPECT_NEAR(assignment.taxi_score, recomputed, 1e-9);
  }
}

TEST(CappedLists, CandidateCapZeroMeansAllTaxis) {
  Rng rng(125);
  const auto instance = random_instance(rng, 6, 10);
  SharingParams uncapped;
  SharingParams generous;
  generous.candidate_taxis_per_unit = 10;  // == taxi count: no truncation
  const auto a = dispatch_sharing(instance.taxis, instance.requests, kEuclidean, uncapped);
  const auto b = dispatch_sharing(instance.taxis, instance.requests, kEuclidean, generous);
  ASSERT_EQ(a.assignments.size(), b.assignments.size());
  for (std::size_t i = 0; i < a.assignments.size(); ++i) {
    EXPECT_EQ(a.assignments[i].taxi_index, b.assignments[i].taxi_index);
    EXPECT_EQ(a.assignments[i].request_indices, b.assignments[i].request_indices);
  }
}

/// Two opposite-direction requests (never poolable under a tight detour
/// threshold) and three taxis: t0 and t1 sit at the *same* pickup bound
/// from both units, t2 strictly farther. The old soft cap kept every
/// taxi tied with the K-th best, so candidate_taxis_per_unit = 1 silently
/// admitted both t0 and t1; the hard cap must keep exactly K candidates
/// with (score, index) tie-breaking.
struct CapInstance {
  std::vector<trace::Taxi> taxis;
  std::vector<trace::Request> requests;
};

CapInstance tied_candidates_instance() {
  CapInstance instance;
  instance.taxis = {{0, {0.1, 1.0}, 4}, {1, {0.1, -1.0}, 4}, {2, {0.1, 2.0}, 4}};
  trace::Request a;
  a.id = 0;
  a.pickup = {0.0, 0.0};
  a.dropoff = {-5.0, 0.0};
  trace::Request b;
  b.id = 1;
  b.pickup = {0.2, 0.0};
  b.dropoff = {5.2, 0.0};
  instance.requests = {a, b};
  return instance;
}

TEST(CappedLists, CandidateCapIsAHardCapWithDeterministicTies) {
  const CapInstance instance = tied_candidates_instance();
  SharingParams params;
  params.grouping.detour_threshold_km = 0.1;  // forbid pooling
  params.candidate_taxis_per_unit = 1;
  const SharingOutcome outcome =
      dispatch_sharing(instance.taxis, instance.requests, kEuclidean, params);
  // Both units tie on t0/t1 but may keep only one candidate; the
  // deterministic (score, index) rule selects t0 for both, so the two
  // units compete for a single taxi and one request goes unserved.
  ASSERT_EQ(outcome.assignments.size(), 1u);
  EXPECT_EQ(outcome.assignments[0].taxi_index, 0);
  EXPECT_EQ(outcome.assignments[0].request_indices, (std::vector<std::size_t>{0}));
  EXPECT_EQ(outcome.unserved_request_indices, (std::vector<std::size_t>{1}));
}

TEST(CappedLists, WideningTheHardCapRestoresFullService) {
  const CapInstance instance = tied_candidates_instance();
  SharingParams params;
  params.grouping.detour_threshold_km = 0.1;
  params.candidate_taxis_per_unit = 2;
  const SharingOutcome outcome =
      dispatch_sharing(instance.taxis, instance.requests, kEuclidean, params);
  EXPECT_EQ(outcome.assignments.size(), 2u);
  EXPECT_TRUE(outcome.unserved_request_indices.empty());
}

TEST(CappedLists, HardCapComposesWithSpatialPruning) {
  // A finite passenger threshold routes candidate collection through the
  // grid-union path; t2 at distance ~2.0025 km falls outside tau_p = 2.0
  // and the hard cap then picks among {t0, t1} deterministically.
  const CapInstance instance = tied_candidates_instance();
  SharingParams pruned;
  pruned.grouping.detour_threshold_km = 0.1;
  pruned.candidate_taxis_per_unit = 2;
  pruned.preference.passenger_threshold_km = 2.0;
  SharingParams dense = pruned;
  dense.preference.spatial_prune = false;
  const SharingOutcome a =
      dispatch_sharing(instance.taxis, instance.requests, kEuclidean, pruned);
  const SharingOutcome b =
      dispatch_sharing(instance.taxis, instance.requests, kEuclidean, dense);
  ASSERT_EQ(a.assignments.size(), 2u);
  EXPECT_TRUE(a.unserved_request_indices.empty());
  ASSERT_EQ(b.assignments.size(), a.assignments.size());
  for (std::size_t i = 0; i < a.assignments.size(); ++i) {
    EXPECT_NE(a.assignments[i].taxi_index, 2);
    EXPECT_EQ(a.assignments[i].taxi_index, b.assignments[i].taxi_index);
    EXPECT_EQ(a.assignments[i].request_indices, b.assignments[i].request_indices);
  }
}

}  // namespace
}  // namespace o2o::core
