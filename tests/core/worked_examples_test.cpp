// Concrete instances reconstructing the paper's worked examples:
// Fig. 1 (the S1-vs-S2 dispatch trade-off), Fig. 2 (Algorithm 1's
// proposal/refusal walk with a dummy entry), and Fig. 3 (Algorithm 2's
// BreakDispatch rules), plus the Theorem 2 narrative.
#include <gtest/gtest.h>

#include "core/all_stable.h"
#include "core/selectors.h"
#include "core/stable_matching.h"
#include "matching/hungarian.h"

namespace o2o::core {
namespace {

// ----------------------------------------------------------- Figure 1
//
// Two requests, two taxis. Pick-up distances:
//   D(t0, r0) = 2   D(t1, r0) = 3
//   D(t0, r1) = 5   D(t1, r1) = 10
// Schedule S1 = {r0-t0, r1-t1} has total pick-up distance 12; schedule
// S2 = {r0-t1, r1-t0} has total 8. The company's min-cost pick is S2,
// but S2 is *blocked* by (r0, t0) -- exactly the fairness tension the
// introduction describes. (Trip lengths are equal so taxi preferences
// reduce to pick-up distances too.)

PreferenceProfile figure1_profile() {
  return PreferenceProfile::from_scores({{2.0, 3.0}, {5.0, 10.0}},
                                        {{2.0, 3.0}, {5.0, 10.0}}, 2);
}

TEST(Figure1, MinCostPrefersS2) {
  matching::CostMatrix costs(2, 2);
  costs.at(0, 0) = 2.0;
  costs.at(0, 1) = 3.0;
  costs.at(1, 0) = 5.0;
  costs.at(1, 1) = 10.0;
  const matching::Assignment min_cost = matching::solve_min_cost(costs);
  EXPECT_EQ(min_cost, (matching::Assignment{1, 0}));  // S2, total 8
}

TEST(Figure1, S2IsNotStable) {
  const auto profile = figure1_profile();
  const Matching s2 = make_matching({1, 0}, 2);
  const auto blocks = blocking_pairs(profile, s2);
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0], (std::pair<std::size_t, std::size_t>{0, 0}));
}

TEST(Figure1, StableDispatchPicksS1DespiteLargerTotal) {
  const auto profile = figure1_profile();
  const Matching schedule = gale_shapley_requests(profile);
  EXPECT_EQ(schedule.request_to_taxi, (std::vector<int>{0, 1}));  // S1
  EXPECT_TRUE(is_stable(profile, schedule));
  // S1 is the *unique* stable schedule here.
  EXPECT_EQ(enumerate_all_stable(profile).matchings.size(), 1u);
}

// ----------------------------------------------------------- Figure 2
//
// Three requests, two taxis, with dummy entries:
//   r0: tA > tB          r1: tA > dummy      r2: tA only
//   tA: r2 > r0 > r1     tB: r0 only
// Algorithm 1's walk: r0 takes tA; r1 proposes tA, is refused (tA holds
// r0), hits its dummy -> unserved; r2 proposes tA, displaces r0; r0
// re-proposes tB and is accepted.

PreferenceProfile figure2_profile() {
  const double kNo = kUnacceptable;
  // passenger scores (rows = r0..r2, cols = tA, tB)
  std::vector<std::vector<double>> passenger{{1.0, 2.0}, {1.0, kNo}, {1.0, kNo}};
  // taxi scores: tA ranks r2 < r0 < r1; tB accepts only r0
  std::vector<std::vector<double>> taxi{{2.0, 1.0}, {3.0, kNo}, {1.0, kNo}};
  return PreferenceProfile::from_scores(std::move(passenger), std::move(taxi), 2);
}

TEST(Figure2, Algorithm1WalksToTheNarratedSchedule) {
  const auto profile = figure2_profile();
  const Matching schedule = gale_shapley_requests(profile);
  EXPECT_EQ(schedule.request_to_taxi, (std::vector<int>{1, kDummy, 0}));
  EXPECT_TRUE(is_stable(profile, schedule));
}

TEST(Figure2, UnservedRequestIsUnservedInAllStableSchedules) {
  // Theorem 2 on the worked example.
  const auto profile = figure2_profile();
  for (const Matching& schedule : brute_force_all_stable(profile)) {
    EXPECT_EQ(schedule.request_to_taxi[1], kDummy);
  }
}

// ----------------------------------------------------------- Figure 3
//
// An instance with one unserved request and exactly two stable
// schedules, exercising all three BreakDispatch rules:
//   r0: tA > tB    r1: tB > tA    r2: tA > tB (always refused)
//   tA: r1 > r0 > r2    tB: r0 > r1 > r2

PreferenceProfile figure3_profile() {
  std::vector<std::vector<double>> passenger{{1.0, 2.0}, {2.0, 1.0}, {1.0, 2.0}};
  std::vector<std::vector<double>> taxi{{2.0, 1.0}, {1.0, 2.0}, {3.0, 3.0}};
  return PreferenceProfile::from_scores(std::move(passenger), std::move(taxi), 2);
}

TEST(Figure3, TwoStableSchedulesAndOnePermanentlyUnserved) {
  const auto profile = figure3_profile();
  const AllStableResult all = enumerate_all_stable(profile);
  ASSERT_EQ(all.matchings.size(), 2u);
  EXPECT_EQ(all.matchings[0].request_to_taxi, (std::vector<int>{0, 1, kDummy}));
  EXPECT_EQ(all.matchings[1].request_to_taxi, (std::vector<int>{1, 0, kDummy}));
}

TEST(Figure3, Rule3MakesBreakingTheUnservedRequestFail) {
  const auto profile = figure3_profile();
  const Matching schedule = gale_shapley_requests(profile);
  EXPECT_FALSE(break_dispatch(profile, schedule, 2).has_value());
}

TEST(Figure3, BreakingR0ReachesTheTaxiOptimalSchedule) {
  const auto profile = figure3_profile();
  const Matching schedule = gale_shapley_requests(profile);
  const auto broken = break_dispatch(profile, schedule, 0);
  ASSERT_TRUE(broken.has_value());
  EXPECT_EQ(broken->request_to_taxi, (std::vector<int>{1, 0, kDummy}));
  EXPECT_EQ(broken->request_to_taxi, gale_shapley_taxis(profile).request_to_taxi);
}

TEST(Figure3, TaxiOptimalPickImprovesTaxiTotals) {
  const auto profile = figure3_profile();
  const AllStableResult all = enumerate_all_stable(profile);
  const ScheduleEvaluation passenger_side = evaluate(profile, all.matchings[0]);
  const ScheduleEvaluation taxi_side =
      evaluate(profile, select_taxi_optimal(all.matchings, profile));
  EXPECT_LT(taxi_side.taxi_total, passenger_side.taxi_total);
  EXPECT_LE(passenger_side.passenger_total, taxi_side.passenger_total);
}

}  // namespace
}  // namespace o2o::core
