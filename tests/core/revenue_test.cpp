#include "core/revenue.h"

#include <gtest/gtest.h>

#include "core/all_stable.h"
#include "tests/core/test_helpers.h"
#include "util/rng.h"

namespace o2o::core {
namespace {

using testing::random_instance;

const geo::EuclideanOracle kOracle;

TEST(Fare, FlagFallPlusMetered) {
  const FareModel model{2.5, 1.75, 0.25};
  EXPECT_DOUBLE_EQ(model.fare(0.0), 2.5);
  EXPECT_DOUBLE_EQ(model.fare(4.0), 2.5 + 7.0);
}

TEST(Fare, TotalCountsOnlyServedRequests) {
  std::vector<trace::Request> requests(2);
  requests[0] = {0, 0.0, {0, 0}, {4, 0}, 1};  // 4 km trip
  requests[1] = {1, 0.0, {0, 0}, {2, 0}, 1};  // 2 km trip
  const Matching matching = make_matching({0, kDummy}, 1);
  const FareModel model{2.0, 1.0, 0.5};
  EXPECT_DOUBLE_EQ(total_fare(requests, matching, kOracle, model), 6.0);
  EXPECT_DOUBLE_EQ(company_revenue(requests, matching, kOracle, model), 3.0);
}

TEST(Fare, RevenueInvariantAcrossTheStableLattice) {
  // The rural-hospitals consequence the module documents: every stable
  // schedule serves the same requests, so fare revenue is constant.
  Rng rng(71);
  for (int trial = 0; trial < 15; ++trial) {
    const auto instance = random_instance(rng, 6, 5);
    PreferenceParams params;
    params.passenger_threshold_km = 7.0;
    params.taxi_threshold_score = 2.0;
    const auto profile =
        build_nonsharing_profile(instance.taxis, instance.requests, kOracle, params);
    const AllStableResult all = enumerate_all_stable(profile);
    EXPECT_TRUE(revenue_invariant_across(instance.requests, all.matchings, kOracle))
        << "trial " << trial;
  }
}

TEST(Fare, InvarianceDetectsDifferingServedSets) {
  std::vector<trace::Request> requests(1);
  requests[0] = {0, 0.0, {0, 0}, {4, 0}, 1};
  const Matching served = make_matching({0}, 1);
  const Matching unserved = make_matching({kDummy}, 1);
  EXPECT_FALSE(revenue_invariant_across(requests, {served, unserved}, kOracle));
  EXPECT_TRUE(revenue_invariant_across(requests, {served, served}, kOracle));
  EXPECT_TRUE(revenue_invariant_across(requests, {}, kOracle));
}

TEST(Fare, MismatchedSizesThrow) {
  std::vector<trace::Request> requests(2);
  const Matching matching = make_matching({0}, 1);
  EXPECT_THROW(total_fare(requests, matching, kOracle), ContractViolation);
}

}  // namespace
}  // namespace o2o::core
