#include "core/ties.h"

#include <gtest/gtest.h>

#include <numeric>
#include <set>
#include <utility>
#include <vector>

#include "core/shard_engine.h"
#include "util/contracts.h"
#include "util/rng.h"

namespace o2o::core {
namespace {

TiedScores all_tied(std::size_t requests, std::size_t taxis) {
  TiedScores scores;
  scores.passenger.assign(requests, std::vector<double>(taxis, 1.0));
  scores.taxi.assign(requests, std::vector<double>(taxis, 1.0));
  return scores;
}

TEST(WeakStability, FullyTiedAnyPerfectMatchingIsWeaklyStable) {
  const TiedScores scores = all_tied(2, 2);
  // With everyone indifferent, no strictly-blocking pair can exist.
  EXPECT_TRUE(is_weakly_stable(scores, make_matching({0, 1}, 2)));
  EXPECT_TRUE(is_weakly_stable(scores, make_matching({1, 0}, 2)));
}

TEST(WeakStability, UnmatchedAcceptablePairStillBlocks) {
  const TiedScores scores = all_tied(1, 1);
  // Both unmatched and mutually acceptable: strictly better than dummies.
  EXPECT_FALSE(is_weakly_stable(scores, make_matching({kDummy}, 1)));
}

TEST(WeakStability, StrictBlockRequiresBothSidesStrict) {
  TiedScores scores = all_tied(2, 2);
  // r0 strictly prefers t0, but t0 is indifferent: not a strict block.
  scores.passenger[0][0] = 0.5;
  const Matching swapped = make_matching({1, 0}, 2);
  EXPECT_TRUE(is_weakly_stable(scores, swapped));
  // Now make t0 strictly prefer r0 as well -> strict block appears.
  scores.taxi[0][0] = 0.5;
  EXPECT_FALSE(is_weakly_stable(scores, swapped));
  const auto blocks = strict_blocking_pairs(scores, swapped);
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0], (std::pair<std::size_t, std::size_t>{0, 0}));
}

TEST(WeakStability, InvalidMatchingIsNotWeaklyStable) {
  TiedScores scores = all_tied(1, 2);
  scores.passenger[0][1] = kUnacceptable;
  EXPECT_FALSE(is_weakly_stable(scores, make_matching({1}, 2)));
}

TEST(BreakTies, ProducesAStrictProfileOfTheSameShape) {
  const TiedScores scores = all_tied(3, 4);
  const PreferenceProfile profile = break_ties(scores, 7);
  EXPECT_EQ(profile.request_count(), 3u);
  EXPECT_EQ(profile.taxi_count(), 4u);
  for (std::size_t r = 0; r < 3; ++r) {
    EXPECT_EQ(profile.request_list(r).size(), 4u);  // nothing truncated
  }
}

TEST(BreakTies, PreservesUnacceptability) {
  TiedScores scores = all_tied(2, 2);
  scores.passenger[0][1] = kUnacceptable;
  scores.taxi[1][0] = kUnacceptable;
  const PreferenceProfile profile = break_ties(scores, 3);
  EXPECT_FALSE(profile.acceptable(0, 1));
  EXPECT_FALSE(profile.acceptable(1, 0));
  EXPECT_TRUE(profile.acceptable(0, 0));
}

TEST(BreakTies, DoesNotReorderStrictPreferences) {
  TiedScores scores = all_tied(1, 3);
  scores.passenger[0] = {3.0, 1.0, 2.0};
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const PreferenceProfile profile = break_ties(scores, seed);
    EXPECT_EQ(profile.request_list(0), (std::vector<int>{1, 2, 0})) << "seed " << seed;
  }
}

TEST(BreakTies, DifferentSeedsExploreDifferentTieBreaks) {
  const TiedScores scores = all_tied(1, 4);
  std::set<std::vector<int>> orders;
  for (std::uint64_t seed = 0; seed < 24; ++seed) {
    orders.insert(break_ties(scores, seed).request_list(0));
  }
  EXPECT_GT(orders.size(), 3u);  // 4! = 24 possible; expect real variety
}

TEST(TieBreakGs, EveryRandomTieBreakIsWeaklyStable) {
  Rng rng(91);
  for (int trial = 0; trial < 20; ++trial) {
    TiedScores scores;
    const std::size_t requests = 2 + rng.uniform_index(5);
    const std::size_t taxis = 2 + rng.uniform_index(5);
    scores.passenger.assign(requests, std::vector<double>(taxis));
    scores.taxi.assign(requests, std::vector<double>(taxis));
    for (std::size_t r = 0; r < requests; ++r) {
      for (std::size_t t = 0; t < taxis; ++t) {
        // Coarse integer scores force plenty of ties.
        scores.passenger[r][t] =
            rng.bernoulli(0.2) ? kUnacceptable : static_cast<double>(rng.uniform_index(3));
        scores.taxi[r][t] =
            rng.bernoulli(0.2) ? kUnacceptable : static_cast<double>(rng.uniform_index(3));
      }
    }
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      const Matching matching = gale_shapley_requests(break_ties(scores, seed));
      EXPECT_TRUE(is_weakly_stable(scores, matching)) << "trial " << trial;
    }
  }
}

TEST(BreakTies, RejectsScoreGapsInsideTheJitterSpan) {
  // Two *distinct* scores closer together than the jitter span violate
  // the determinism contract: the perturbation could flip a genuine
  // preference, so break_ties must refuse rather than silently produce
  // a draw-dependent profile.
  TiedScores scores = all_tied(1, 2);
  scores.passenger[0][1] = 1.0 + 5e-10;
  EXPECT_THROW(break_ties(scores, 1), ContractViolation);
}

TEST(DeterminismContract, ShardedMergeIsStableUnderRequestRelabeling) {
  // The cross-component determinism contract (ties.h): on a strict
  // profile, the sharded engine's merge -- components ordered by their
  // smallest member request id -- must agree with the serial run under
  // *any* labeling of the requests. Relabeling permutes the matching
  // row-for-row without changing a single matched pair.
  Rng rng(123);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t requests = 4 + rng.uniform_index(6);
    const std::size_t taxis = 4 + rng.uniform_index(6);
    std::vector<std::vector<double>> passenger(requests, std::vector<double>(taxis));
    std::vector<std::vector<double>> taxi(requests, std::vector<double>(taxis));
    for (std::size_t r = 0; r < requests; ++r) {
      for (std::size_t t = 0; t < taxis; ++t) {
        // Continuous scores: strict preferences with probability one.
        passenger[r][t] = rng.bernoulli(0.3) ? kUnacceptable : rng.uniform(0.0, 100.0);
        taxi[r][t] = rng.bernoulli(0.3) ? kUnacceptable : rng.uniform(0.0, 100.0);
      }
    }
    const PreferenceProfile profile =
        PreferenceProfile::from_scores(passenger, taxi, taxis);
    const Matching serial = gale_shapley_requests(profile);
    const Matching sharded = sharded_gale_shapley(profile, ProposalSide::kPassengers);
    EXPECT_EQ(serial.request_to_taxi, sharded.request_to_taxi) << "trial " << trial;

    // Relabel: request i of the permuted instance is request perm[i] of
    // the original.
    std::vector<std::size_t> perm(requests);
    std::iota(perm.begin(), perm.end(), std::size_t{0});
    for (std::size_t i = requests; i > 1; --i) {
      std::swap(perm[i - 1], perm[rng.uniform_index(i)]);
    }
    std::vector<std::vector<double>> passenger_perm(requests);
    std::vector<std::vector<double>> taxi_perm(requests);
    for (std::size_t i = 0; i < requests; ++i) {
      passenger_perm[i] = passenger[perm[i]];
      taxi_perm[i] = taxi[perm[i]];
    }
    const PreferenceProfile relabeled =
        PreferenceProfile::from_scores(passenger_perm, taxi_perm, taxis);
    const Matching serial_perm = gale_shapley_requests(relabeled);
    const Matching sharded_perm =
        sharded_gale_shapley(relabeled, ProposalSide::kPassengers);
    EXPECT_EQ(serial_perm.request_to_taxi, sharded_perm.request_to_taxi)
        << "trial " << trial;
    for (std::size_t i = 0; i < requests; ++i) {
      EXPECT_EQ(sharded_perm.request_to_taxi[i], serial.request_to_taxi[perm[i]])
          << "trial " << trial << " request " << i;
    }
  }
}

TEST(MaxCardinality, TieBreaksCanChangeTheMatchedCount) {
  // The classic size-variance instance: r0 is indifferent between t0 and
  // t1; r1 only accepts t0. Tie-break r0 -> t0 leaves r1 unmatched
  // (size 1); tie-break r0 -> t1 serves both (size 2).
  TiedScores scores;
  scores.passenger = {{1.0, 1.0}, {1.0, kUnacceptable}};
  scores.taxi = {{1.0, 1.0}, {1.0, kUnacceptable}};
  const TieBreakResult best = max_cardinality_weakly_stable(scores, 32, 5);
  EXPECT_EQ(best.matched, 2u);
  EXPECT_EQ(best.matching.request_to_taxi, (std::vector<int>{1, 0}));
  EXPECT_TRUE(is_weakly_stable(scores, best.matching));
}

TEST(MaxCardinality, NeverWorseThanTheDeterministicTieBreak) {
  Rng rng(92);
  for (int trial = 0; trial < 15; ++trial) {
    TiedScores scores;
    const std::size_t n = 4 + rng.uniform_index(4);
    scores.passenger.assign(n, std::vector<double>(n));
    scores.taxi.assign(n, std::vector<double>(n));
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t t = 0; t < n; ++t) {
        scores.passenger[r][t] =
            rng.bernoulli(0.3) ? kUnacceptable : static_cast<double>(rng.uniform_index(2));
        scores.taxi[r][t] =
            rng.bernoulli(0.3) ? kUnacceptable : static_cast<double>(rng.uniform_index(2));
      }
    }
    const Matching deterministic = gale_shapley_requests(
        PreferenceProfile::from_scores(scores.passenger, scores.taxi, scores.taxi_count()));
    const TieBreakResult best = max_cardinality_weakly_stable(scores, 8, 3);
    EXPECT_GE(best.matched, deterministic.matched_count()) << "trial " << trial;
  }
}

}  // namespace
}  // namespace o2o::core
