#include "core/ties.h"

#include <gtest/gtest.h>

#include <set>

#include "util/rng.h"

namespace o2o::core {
namespace {

TiedScores all_tied(std::size_t requests, std::size_t taxis) {
  TiedScores scores;
  scores.passenger.assign(requests, std::vector<double>(taxis, 1.0));
  scores.taxi.assign(requests, std::vector<double>(taxis, 1.0));
  return scores;
}

TEST(WeakStability, FullyTiedAnyPerfectMatchingIsWeaklyStable) {
  const TiedScores scores = all_tied(2, 2);
  // With everyone indifferent, no strictly-blocking pair can exist.
  EXPECT_TRUE(is_weakly_stable(scores, make_matching({0, 1}, 2)));
  EXPECT_TRUE(is_weakly_stable(scores, make_matching({1, 0}, 2)));
}

TEST(WeakStability, UnmatchedAcceptablePairStillBlocks) {
  const TiedScores scores = all_tied(1, 1);
  // Both unmatched and mutually acceptable: strictly better than dummies.
  EXPECT_FALSE(is_weakly_stable(scores, make_matching({kDummy}, 1)));
}

TEST(WeakStability, StrictBlockRequiresBothSidesStrict) {
  TiedScores scores = all_tied(2, 2);
  // r0 strictly prefers t0, but t0 is indifferent: not a strict block.
  scores.passenger[0][0] = 0.5;
  const Matching swapped = make_matching({1, 0}, 2);
  EXPECT_TRUE(is_weakly_stable(scores, swapped));
  // Now make t0 strictly prefer r0 as well -> strict block appears.
  scores.taxi[0][0] = 0.5;
  EXPECT_FALSE(is_weakly_stable(scores, swapped));
  const auto blocks = strict_blocking_pairs(scores, swapped);
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0], (std::pair<std::size_t, std::size_t>{0, 0}));
}

TEST(WeakStability, InvalidMatchingIsNotWeaklyStable) {
  TiedScores scores = all_tied(1, 2);
  scores.passenger[0][1] = kUnacceptable;
  EXPECT_FALSE(is_weakly_stable(scores, make_matching({1}, 2)));
}

TEST(BreakTies, ProducesAStrictProfileOfTheSameShape) {
  const TiedScores scores = all_tied(3, 4);
  const PreferenceProfile profile = break_ties(scores, 7);
  EXPECT_EQ(profile.request_count(), 3u);
  EXPECT_EQ(profile.taxi_count(), 4u);
  for (std::size_t r = 0; r < 3; ++r) {
    EXPECT_EQ(profile.request_list(r).size(), 4u);  // nothing truncated
  }
}

TEST(BreakTies, PreservesUnacceptability) {
  TiedScores scores = all_tied(2, 2);
  scores.passenger[0][1] = kUnacceptable;
  scores.taxi[1][0] = kUnacceptable;
  const PreferenceProfile profile = break_ties(scores, 3);
  EXPECT_FALSE(profile.acceptable(0, 1));
  EXPECT_FALSE(profile.acceptable(1, 0));
  EXPECT_TRUE(profile.acceptable(0, 0));
}

TEST(BreakTies, DoesNotReorderStrictPreferences) {
  TiedScores scores = all_tied(1, 3);
  scores.passenger[0] = {3.0, 1.0, 2.0};
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const PreferenceProfile profile = break_ties(scores, seed);
    EXPECT_EQ(profile.request_list(0), (std::vector<int>{1, 2, 0})) << "seed " << seed;
  }
}

TEST(BreakTies, DifferentSeedsExploreDifferentTieBreaks) {
  const TiedScores scores = all_tied(1, 4);
  std::set<std::vector<int>> orders;
  for (std::uint64_t seed = 0; seed < 24; ++seed) {
    orders.insert(break_ties(scores, seed).request_list(0));
  }
  EXPECT_GT(orders.size(), 3u);  // 4! = 24 possible; expect real variety
}

TEST(TieBreakGs, EveryRandomTieBreakIsWeaklyStable) {
  Rng rng(91);
  for (int trial = 0; trial < 20; ++trial) {
    TiedScores scores;
    const std::size_t requests = 2 + rng.uniform_index(5);
    const std::size_t taxis = 2 + rng.uniform_index(5);
    scores.passenger.assign(requests, std::vector<double>(taxis));
    scores.taxi.assign(requests, std::vector<double>(taxis));
    for (std::size_t r = 0; r < requests; ++r) {
      for (std::size_t t = 0; t < taxis; ++t) {
        // Coarse integer scores force plenty of ties.
        scores.passenger[r][t] =
            rng.bernoulli(0.2) ? kUnacceptable : static_cast<double>(rng.uniform_index(3));
        scores.taxi[r][t] =
            rng.bernoulli(0.2) ? kUnacceptable : static_cast<double>(rng.uniform_index(3));
      }
    }
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      const Matching matching = gale_shapley_requests(break_ties(scores, seed));
      EXPECT_TRUE(is_weakly_stable(scores, matching)) << "trial " << trial;
    }
  }
}

TEST(MaxCardinality, TieBreaksCanChangeTheMatchedCount) {
  // The classic size-variance instance: r0 is indifferent between t0 and
  // t1; r1 only accepts t0. Tie-break r0 -> t0 leaves r1 unmatched
  // (size 1); tie-break r0 -> t1 serves both (size 2).
  TiedScores scores;
  scores.passenger = {{1.0, 1.0}, {1.0, kUnacceptable}};
  scores.taxi = {{1.0, 1.0}, {1.0, kUnacceptable}};
  const TieBreakResult best = max_cardinality_weakly_stable(scores, 32, 5);
  EXPECT_EQ(best.matched, 2u);
  EXPECT_EQ(best.matching.request_to_taxi, (std::vector<int>{1, 0}));
  EXPECT_TRUE(is_weakly_stable(scores, best.matching));
}

TEST(MaxCardinality, NeverWorseThanTheDeterministicTieBreak) {
  Rng rng(92);
  for (int trial = 0; trial < 15; ++trial) {
    TiedScores scores;
    const std::size_t n = 4 + rng.uniform_index(4);
    scores.passenger.assign(n, std::vector<double>(n));
    scores.taxi.assign(n, std::vector<double>(n));
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t t = 0; t < n; ++t) {
        scores.passenger[r][t] =
            rng.bernoulli(0.3) ? kUnacceptable : static_cast<double>(rng.uniform_index(2));
        scores.taxi[r][t] =
            rng.bernoulli(0.3) ? kUnacceptable : static_cast<double>(rng.uniform_index(2));
      }
    }
    const Matching deterministic = gale_shapley_requests(
        PreferenceProfile::from_scores(scores.passenger, scores.taxi, scores.taxi_count()));
    const TieBreakResult best = max_cardinality_weakly_stable(scores, 8, 3);
    EXPECT_GE(best.matched, deterministic.matched_count()) << "trial " << trial;
  }
}

}  // namespace
}  // namespace o2o::core
