#include "core/median.h"

#include <gtest/gtest.h>

#include "core/all_stable.h"
#include "core/selectors.h"
#include "tests/core/test_helpers.h"
#include "util/contracts.h"
#include "util/rng.h"

namespace o2o::core {
namespace {

using testing::random_profile;

/// 3x3 Latin square with three stable matchings (see all_stable_test).
PreferenceProfile latin_square_3x3() {
  return PreferenceProfile::from_scores({{1, 2, 3}, {3, 1, 2}, {2, 3, 1}},
                                        {{3, 2, 1}, {1, 3, 2}, {2, 1, 3}}, 3);
}

TEST(Median, LatinSquareMedianIsTheMiddleMatching) {
  const auto profile = latin_square_3x3();
  const AllStableResult all = enumerate_all_stable(profile);
  ASSERT_EQ(all.matchings.size(), 3u);
  const Matching median = median_stable_matching(all.matchings, profile);
  EXPECT_EQ(median.request_to_taxi, (std::vector<int>{1, 2, 0}));
}

TEST(Median, EndpointsAreTheOptimalMatchings) {
  const auto profile = latin_square_3x3();
  const AllStableResult all = enumerate_all_stable(profile);
  const Matching best = generalized_median(all.matchings, profile, 0);
  const Matching worst = generalized_median(all.matchings, profile, 2);
  EXPECT_EQ(best.request_to_taxi, gale_shapley_requests(profile).request_to_taxi);
  EXPECT_EQ(worst.request_to_taxi, gale_shapley_taxis(profile).request_to_taxi);
}

TEST(Median, EveryGeneralizedMedianIsStable) {
  Rng rng(94);
  for (int trial = 0; trial < 25; ++trial) {
    const auto profile = random_profile(rng, 5, 5, 0.2);
    const AllStableResult all = enumerate_all_stable(profile);
    for (std::size_t k = 0; k < all.matchings.size(); ++k) {
      // generalized_median has a stability postcondition; reaching here
      // without a throw plus an explicit re-check covers both paths.
      const Matching median = generalized_median(all.matchings, profile, k);
      EXPECT_TRUE(is_stable(profile, median)) << "trial " << trial << " k " << k;
    }
  }
}

TEST(Median, MonotoneForEachRequestAsKGrows) {
  Rng rng(95);
  for (int trial = 0; trial < 10; ++trial) {
    const auto profile = random_profile(rng, 5, 5, 0.1);
    const AllStableResult all = enumerate_all_stable(profile);
    if (all.matchings.size() < 2) continue;
    for (std::size_t k = 1; k < all.matchings.size(); ++k) {
      const Matching previous = generalized_median(all.matchings, profile, k - 1);
      const Matching current = generalized_median(all.matchings, profile, k);
      for (std::size_t r = 0; r < profile.request_count(); ++r) {
        // Larger k is weakly worse for every request.
        EXPECT_FALSE(profile.request_prefers(r, current.request_to_taxi[r],
                                             previous.request_to_taxi[r]));
      }
    }
  }
}

TEST(Median, MedianBalancesTheTwoSides) {
  Rng rng(96);
  int median_between = 0, comparisons = 0;
  for (int trial = 0; trial < 40; ++trial) {
    const auto profile = random_profile(rng, 6, 6, 0.0);
    const AllStableResult all = enumerate_all_stable(profile);
    if (all.matchings.size() < 3) continue;
    const auto p = evaluate(profile, all.matchings.front());
    const auto t =
        evaluate(profile, select_taxi_optimal(all.matchings, profile));
    const auto m = evaluate(profile, median_stable_matching(all.matchings, profile));
    ++comparisons;
    if (m.passenger_total >= p.passenger_total - 1e-9 &&
        m.taxi_total >= t.taxi_total - 1e-9) {
      ++median_between;
    }
  }
  ASSERT_GT(comparisons, 5);
  // The median never beats the optima of either side.
  EXPECT_EQ(median_between, comparisons);
}

TEST(Median, UnservedRequestsStayUnserved) {
  // Figure-3-style instance: r2 unserved in every stable schedule.
  const auto profile = PreferenceProfile::from_scores(
      {{1.0, 2.0}, {2.0, 1.0}, {1.0, 2.0}}, {{2.0, 1.0}, {1.0, 2.0}, {3.0, 3.0}}, 2);
  const AllStableResult all = enumerate_all_stable(profile);
  for (std::size_t k = 0; k < all.matchings.size(); ++k) {
    EXPECT_EQ(generalized_median(all.matchings, profile, k).request_to_taxi[2], kDummy);
  }
}

TEST(Median, PreconditionsEnforced) {
  const auto profile = latin_square_3x3();
  const AllStableResult all = enumerate_all_stable(profile);
  EXPECT_THROW(generalized_median(all.matchings, profile, all.matchings.size()),
               ContractViolation);
  EXPECT_THROW(generalized_median({}, profile, 0), ContractViolation);
}

}  // namespace
}  // namespace o2o::core
