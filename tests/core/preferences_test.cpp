#include "core/preferences.h"

#include <gtest/gtest.h>

#include "util/contracts.h"
#include "util/rng.h"

namespace o2o::core {
namespace {

const geo::EuclideanOracle kOracle;

trace::Taxi make_taxi(trace::TaxiId id, geo::Point location, int seats = 4) {
  trace::Taxi taxi;
  taxi.id = id;
  taxi.location = location;
  taxi.seats = seats;
  return taxi;
}

trace::Request make_request(trace::RequestId id, geo::Point pickup, geo::Point dropoff,
                            int seats = 1) {
  trace::Request request;
  request.id = id;
  request.pickup = pickup;
  request.dropoff = dropoff;
  request.seats = seats;
  return request;
}

TEST(FromScores, ListsAreSortedByScore) {
  const auto profile = PreferenceProfile::from_scores({{3.0, 1.0, 2.0}},
                                                      {{0.0, 0.0, 0.0}}, 3);
  EXPECT_EQ(profile.request_list(0), (std::vector<int>{1, 2, 0}));
}

TEST(FromScores, TiesBreakTowardLowerIndex) {
  const auto profile = PreferenceProfile::from_scores({{5.0, 5.0, 1.0}},
                                                      {{0.0, 0.0, 0.0}}, 3);
  EXPECT_EQ(profile.request_list(0), (std::vector<int>{2, 0, 1}));
}

TEST(FromScores, UnacceptableEntriesAreTruncated) {
  const auto profile = PreferenceProfile::from_scores({{2.0, kUnacceptable, 1.0}},
                                                      {{0.0, 0.0, kUnacceptable}}, 3);
  EXPECT_EQ(profile.request_list(0), (std::vector<int>{2, 0}));
  EXPECT_EQ(profile.request_rank(0, 1), PreferenceProfile::kNoRank);
  EXPECT_FALSE(profile.acceptable(0, 1));  // request side truncated
  EXPECT_FALSE(profile.acceptable(0, 2));  // taxi side truncated
  EXPECT_TRUE(profile.acceptable(0, 0));
}

TEST(FromScores, TaxiListsAreColumnsOfTheScoreMatrix) {
  const auto profile = PreferenceProfile::from_scores(
      {{0.0, 0.0}, {0.0, 0.0}, {0.0, 0.0}}, {{5.0, 1.0}, {2.0, 2.0}, {9.0, 3.0}}, 2);
  EXPECT_EQ(profile.taxi_list(0), (std::vector<int>{1, 0, 2}));
  EXPECT_EQ(profile.taxi_list(1), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(profile.taxi_rank(0, 2), 2u);
}

TEST(FromScores, ListCapKeepsOnlyBestEntries) {
  const auto profile = PreferenceProfile::from_scores({{4.0, 3.0, 2.0, 1.0}},
                                                      {{0, 0, 0, 0}}, 4,
                                                      /*list_cap=*/2);
  EXPECT_EQ(profile.request_list(0), (std::vector<int>{3, 2}));
  EXPECT_EQ(profile.request_rank(0, 0), PreferenceProfile::kNoRank);
}

TEST(FromScores, MismatchedShapesThrow) {
  EXPECT_THROW(PreferenceProfile::from_scores({{1.0}}, {{1.0, 2.0}}, 1),
               ContractViolation);
  EXPECT_THROW(
      PreferenceProfile::from_scores({{1.0}, {1.0, 2.0}}, {{1.0}, {1.0, 2.0}}, 2),
      ContractViolation);
}

TEST(FromScores, ZeroRequestsKeepExplicitTaxiCount) {
  const auto profile = PreferenceProfile::from_scores({}, {}, 5);
  EXPECT_EQ(profile.request_count(), 0u);
  EXPECT_EQ(profile.taxi_count(), 5u);
  EXPECT_TRUE(profile.taxi_list(4).empty());
}

TEST(Prefers, DummySemantics) {
  const auto profile = PreferenceProfile::from_scores({{1.0, kUnacceptable}},
                                                      {{0.0, 0.0}}, 2);
  // Any acceptable partner beats the dummy.
  EXPECT_TRUE(profile.request_prefers(0, 0, kDummy));
  EXPECT_FALSE(profile.request_prefers(0, kDummy, 0));
  // The dummy beats an unacceptable partner.
  EXPECT_TRUE(profile.request_prefers(0, kDummy, 1) ==
              false);  // both rank kNoRank: no strict preference
  EXPECT_FALSE(profile.request_prefers(0, 1, kDummy));
  EXPECT_FALSE(profile.request_prefers(0, kDummy, kDummy));
}

TEST(NonSharingProfile, PassengerScoreIsPickupDistance) {
  const std::vector<trace::Taxi> taxis{make_taxi(0, {3, 4})};
  const std::vector<trace::Request> requests{make_request(0, {0, 0}, {0, 5})};
  const auto profile =
      build_nonsharing_profile(taxis, requests, kOracle, PreferenceParams{});
  EXPECT_DOUBLE_EQ(profile.passenger_score(0, 0), 5.0);
}

TEST(NonSharingProfile, TaxiScoreSubtractsAlphaTrip) {
  const std::vector<trace::Taxi> taxis{make_taxi(0, {3, 4})};
  const std::vector<trace::Request> requests{make_request(0, {0, 0}, {0, 5})};
  PreferenceParams params;
  params.alpha = 2.0;
  const auto profile = build_nonsharing_profile(taxis, requests, kOracle, params);
  EXPECT_DOUBLE_EQ(profile.taxi_score(0, 0), 5.0 - 2.0 * 5.0);
}

TEST(NonSharingProfile, NearestTaxiRanksFirst) {
  const std::vector<trace::Taxi> taxis{make_taxi(0, {10, 0}), make_taxi(1, {1, 0}),
                                       make_taxi(2, {4, 0})};
  const std::vector<trace::Request> requests{make_request(0, {0, 0}, {0, 9})};
  const auto profile =
      build_nonsharing_profile(taxis, requests, kOracle, PreferenceParams{});
  EXPECT_EQ(profile.request_list(0), (std::vector<int>{1, 2, 0}));
}

TEST(NonSharingProfile, TaxiPrefersLongTripsNearby) {
  // Same pickup distance; the longer trip pays more, so the taxi prefers it.
  const std::vector<trace::Taxi> taxis{make_taxi(0, {0, 0})};
  const std::vector<trace::Request> requests{
      make_request(0, {1, 0}, {2, 0}),    // trip 1 km
      make_request(1, {0, 1}, {0, 10})};  // trip 9 km
  const auto profile =
      build_nonsharing_profile(taxis, requests, kOracle, PreferenceParams{});
  EXPECT_EQ(profile.taxi_list(0), (std::vector<int>{1, 0}));
}

TEST(NonSharingProfile, PassengerThresholdCreatesDummy) {
  const std::vector<trace::Taxi> taxis{make_taxi(0, {1, 0}), make_taxi(1, {9, 0})};
  const std::vector<trace::Request> requests{make_request(0, {0, 0}, {0, 5})};
  PreferenceParams params;
  params.passenger_threshold_km = 5.0;
  const auto profile = build_nonsharing_profile(taxis, requests, kOracle, params);
  EXPECT_EQ(profile.request_list(0), (std::vector<int>{0}));  // taxi 1 beyond the dummy
}

TEST(NonSharingProfile, TaxiThresholdCreatesDummy) {
  // Taxi score = pickup - alpha * trip; with a tight threshold the
  // low-payoff request falls past the dummy.
  const std::vector<trace::Taxi> taxis{make_taxi(0, {5, 0})};
  const std::vector<trace::Request> requests{
      make_request(0, {0, 0}, {0, 1}),   // score 5 - 1 = 4
      make_request(1, {0, 0}, {0, 8})};  // score 5 - 8 = -3
  PreferenceParams params;
  params.taxi_threshold_score = 0.0;
  const auto profile = build_nonsharing_profile(taxis, requests, kOracle, params);
  EXPECT_EQ(profile.taxi_list(0), (std::vector<int>{1}));
  EXPECT_FALSE(profile.acceptable(0, 0));
}

TEST(NonSharingProfile, SeatShortageIsMutuallyUnacceptable) {
  const std::vector<trace::Taxi> taxis{make_taxi(0, {1, 0}, /*seats=*/2)};
  const std::vector<trace::Request> requests{make_request(0, {0, 0}, {5, 0}, /*seats=*/3)};
  const auto profile =
      build_nonsharing_profile(taxis, requests, kOracle, PreferenceParams{});
  EXPECT_TRUE(profile.request_list(0).empty());
  EXPECT_TRUE(profile.taxi_list(0).empty());
}

TEST(NonSharingProfile, EmptyInputsYieldEmptyProfile) {
  const auto profile =
      build_nonsharing_profile({}, {}, kOracle, PreferenceParams{});
  EXPECT_EQ(profile.request_count(), 0u);
  EXPECT_EQ(profile.taxi_count(), 0u);
}

}  // namespace
}  // namespace o2o::core
