#include "core/selectors.h"

#include <gtest/gtest.h>

#include "tests/core/test_helpers.h"
#include "util/contracts.h"
#include "util/rng.h"

namespace o2o::core {
namespace {

using testing::random_profile;

TEST(Evaluate, SumsMatchedScoresOnly) {
  const auto profile = PreferenceProfile::from_scores(
      {{2.0, 7.0}, {4.0, 1.0}}, {{-1.0, 3.0}, {0.5, -2.0}}, 2);
  const Matching matching = make_matching({0, kDummy}, 2);
  const ScheduleEvaluation eval = evaluate(profile, matching);
  EXPECT_EQ(eval.matched, 1u);
  EXPECT_DOUBLE_EQ(eval.passenger_total, 2.0);
  EXPECT_DOUBLE_EQ(eval.taxi_total, -1.0);
  EXPECT_DOUBLE_EQ(eval.passenger_mean(), 2.0);
}

TEST(Evaluate, EmptyMatchingHasZeroMeans) {
  const auto profile = PreferenceProfile::from_scores({{1.0}}, {{1.0}}, 1);
  const ScheduleEvaluation eval = evaluate(profile, make_matching({kDummy}, 1));
  EXPECT_EQ(eval.matched, 0u);
  EXPECT_DOUBLE_EQ(eval.passenger_mean(), 0.0);
  EXPECT_DOUBLE_EQ(eval.taxi_mean(), 0.0);
}

TEST(SelectBy, PicksTheMinimizerAndBreaksTiesFirst) {
  const auto profile = PreferenceProfile::from_scores({{1.0, 2.0}}, {{5.0, 3.0}}, 2);
  const std::vector<Matching> candidates{make_matching({0}, 2), make_matching({1}, 2)};
  const Matching& by_passenger = select_by(
      candidates, profile, [](const PreferenceProfile& p, const Matching& m) {
        return evaluate(p, m).passenger_total;
      });
  EXPECT_EQ(by_passenger.request_to_taxi[0], 0);
  const Matching& by_taxi = select_taxi_optimal(candidates, profile);
  EXPECT_EQ(by_taxi.request_to_taxi[0], 1);
}

TEST(SelectBy, EmptyCandidateListThrows) {
  const auto profile = PreferenceProfile::from_scores({{1.0}}, {{1.0}}, 1);
  EXPECT_THROW(
      select_by({}, profile,
                [](const PreferenceProfile&, const Matching&) { return 0.0; }),
      ContractViolation);
}

TEST(Selectors, PassengerPickEqualsAlgorithm1OverTheFullLattice) {
  Rng rng(91);
  for (int trial = 0; trial < 20; ++trial) {
    const auto profile = random_profile(rng, 5, 5, 0.25);
    const AllStableResult all = enumerate_all_stable(profile);
    const Matching& pick = select_passenger_optimal(all.matchings, profile);
    EXPECT_EQ(pick.request_to_taxi, gale_shapley_requests(profile).request_to_taxi);
  }
}

TEST(Selectors, TaxiPickEqualsTaxiProposingGaleShapley) {
  // NSTD-T two ways: Algorithm 2 + taxi-total selector vs taxi-proposing
  // deferred acceptance. They must agree (the taxi-optimal matching
  // minimizes every taxi's score simultaneously).
  Rng rng(92);
  for (int trial = 0; trial < 20; ++trial) {
    const auto profile = random_profile(rng, 5, 5, 0.25);
    const AllStableResult all = enumerate_all_stable(profile);
    const Matching& pick = select_taxi_optimal(all.matchings, profile);
    EXPECT_EQ(pick.request_to_taxi, gale_shapley_taxis(profile).request_to_taxi)
        << "trial " << trial;
  }
}

TEST(Selectors, CompanyObjectiveCanMaximizeServedRequests) {
  Rng rng(93);
  const auto profile = random_profile(rng, 5, 5, 0.3);
  const AllStableResult all = enumerate_all_stable(profile);
  const Matching& pick = select_by(
      all.matchings, profile, [](const PreferenceProfile& p, const Matching& m) {
        return -static_cast<double>(evaluate(p, m).matched);
      });
  // Rural hospitals: every stable matching serves the same requests, so
  // the count is constant across the lattice.
  for (const Matching& other : all.matchings) {
    EXPECT_EQ(evaluate(profile, other).matched, evaluate(profile, pick).matched);
  }
}

}  // namespace
}  // namespace o2o::core
