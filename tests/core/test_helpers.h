// Shared generators for the core tests: random geometric dispatch
// instances and random abstract preference profiles.
#pragma once

#include <vector>

#include "core/preferences.h"
#include "util/rng.h"

namespace o2o::core::testing {

struct RandomInstance {
  std::vector<trace::Taxi> taxis;
  std::vector<trace::Request> requests;
};

inline RandomInstance random_instance(Rng& rng, std::size_t requests, std::size_t taxis,
                                      double extent = 10.0) {
  RandomInstance instance;
  for (std::size_t t = 0; t < taxis; ++t) {
    trace::Taxi taxi;
    taxi.id = static_cast<trace::TaxiId>(t);
    taxi.location = {rng.uniform(0, extent), rng.uniform(0, extent)};
    taxi.seats = 4;
    instance.taxis.push_back(taxi);
  }
  for (std::size_t r = 0; r < requests; ++r) {
    trace::Request request;
    request.id = static_cast<trace::RequestId>(r);
    request.time_seconds = 0.0;
    request.pickup = {rng.uniform(0, extent), rng.uniform(0, extent)};
    request.dropoff = {rng.uniform(0, extent), rng.uniform(0, extent)};
    request.seats = 1;
    instance.requests.push_back(request);
  }
  return instance;
}

/// Random score-matrix profile with a given fraction of unacceptable
/// entries on each side (scores drawn independently; ties are measure
/// zero, tie-breaking still deterministic).
inline PreferenceProfile random_profile(Rng& rng, std::size_t requests, std::size_t taxis,
                                        double unacceptable_fraction = 0.0) {
  std::vector<std::vector<double>> passenger(requests, std::vector<double>(taxis));
  std::vector<std::vector<double>> taxi(requests, std::vector<double>(taxis));
  for (std::size_t r = 0; r < requests; ++r) {
    for (std::size_t t = 0; t < taxis; ++t) {
      passenger[r][t] =
          rng.bernoulli(unacceptable_fraction) ? kUnacceptable : rng.uniform(0, 100);
      taxi[r][t] =
          rng.bernoulli(unacceptable_fraction) ? kUnacceptable : rng.uniform(-50, 50);
    }
  }
  return PreferenceProfile::from_scores(std::move(passenger), std::move(taxi), taxis);
}

}  // namespace o2o::core::testing
