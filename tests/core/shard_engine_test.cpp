// Differential proof obligations for the component-sharded engine
// (core/shard_engine.h): on every geometry the sharded path must be
// bit-identical to the serial pass it replaces — for both proposal
// sides, for the NSTD-T enumeration path, and end to end through all
// four stable dispatchers.
#include "core/shard_engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/all_stable.h"
#include "core/dispatchers.h"
#include "core/preferences.h"
#include "core/selectors.h"
#include "obs/obs.h"
#include "util/contracts.h"
#include "util/rng.h"

namespace o2o::core {
namespace {

const geo::EuclideanOracle kOracle;

struct Frame {
  std::vector<trace::Taxi> taxis;
  std::vector<trace::Request> requests;

  sim::DispatchContext context() const {
    sim::DispatchContext ctx;
    ctx.idle_taxis = taxis;
    ctx.pending = requests;
    ctx.oracle = &kOracle;
    return ctx;
  }
};

void add_point(Frame& frame, Rng& rng, geo::Point center, double spread_km,
               bool taxi) {
  const geo::Point at{center.x + rng.uniform(-spread_km, spread_km),
                      center.y + rng.uniform(-spread_km, spread_km)};
  if (taxi) {
    frame.taxis.push_back({static_cast<trace::TaxiId>(frame.taxis.size()), at, 4});
  } else {
    trace::Request request;
    request.id = static_cast<trace::RequestId>(500 + frame.requests.size());
    request.pickup = at;
    request.dropoff = {at.x + rng.uniform(-4.0, 4.0), at.y + rng.uniform(-4.0, 4.0)};
    frame.requests.push_back(request);
  }
}

/// Uniform box: a mix of component sizes once thresholds are finite.
Frame random_frame(Rng& rng, std::size_t taxis, std::size_t requests,
                   double extent_km = 30.0) {
  Frame frame;
  for (std::size_t t = 0; t < taxis; ++t) {
    add_point(frame, rng, {extent_km / 2, extent_km / 2}, extent_km / 2, true);
  }
  for (std::size_t r = 0; r < requests; ++r) {
    add_point(frame, rng, {extent_km / 2, extent_km / 2}, extent_km / 2, false);
  }
  return frame;
}

/// Well-separated neighbourhoods: guarantees many components under a
/// finite passenger threshold (no cross-cluster pair is acceptable).
Frame clustered_frame(Rng& rng, std::size_t clusters, std::size_t taxis_per,
                      std::size_t requests_per) {
  Frame frame;
  for (std::size_t c = 0; c < clusters; ++c) {
    const geo::Point center{100.0 * static_cast<double>(c), 0.0};
    for (std::size_t t = 0; t < taxis_per; ++t) add_point(frame, rng, center, 1.5, true);
    for (std::size_t r = 0; r < requests_per; ++r) {
      add_point(frame, rng, center, 1.5, false);
    }
  }
  return frame;
}

/// Everything inside one tight box: a single giant component.
Frame giant_frame(Rng& rng, std::size_t taxis, std::size_t requests) {
  return random_frame(rng, taxis, requests, 2.0);
}

PreferenceParams finite_params() {
  PreferenceParams params;
  params.passenger_threshold_km = 6.0;
  params.taxi_threshold_score = 3.0;
  return params;
}

PreferenceProfile profile_of(const Frame& frame, const PreferenceParams& params) {
  return build_nonsharing_profile(frame.taxis, frame.requests, kOracle, params);
}

void expect_equal(const Matching& a, const Matching& b, const char* what) {
  EXPECT_EQ(a.request_to_taxi, b.request_to_taxi) << what;
  EXPECT_EQ(a.taxi_to_request, b.taxi_to_request) << what;
}

TEST(ExtractComponents, PartitionIsOrderedDisjointAndClosed) {
  Rng rng(7);
  const Frame frame = clustered_frame(rng, 4, 3, 4);
  const PreferenceProfile profile = profile_of(frame, finite_params());
  const ComponentPartition partition = extract_components(profile);

  ASSERT_GE(partition.components.size(), 4u);  // no cross-cluster edges
  std::vector<int> request_owner(profile.request_count(), -1);
  std::vector<int> taxi_owner(profile.taxi_count(), -1);
  std::size_t largest = 0;
  int previous_front = -1;
  for (std::size_t c = 0; c < partition.components.size(); ++c) {
    const ShardComponent& component = partition.components[c];
    ASSERT_FALSE(component.requests.empty());  // bipartite: every component has one
    // Merge order: components sorted by smallest member request id, and
    // member lists ascending.
    EXPECT_GT(component.requests.front(), previous_front);
    previous_front = component.requests.front();
    for (std::size_t i = 1; i < component.requests.size(); ++i) {
      EXPECT_LT(component.requests[i - 1], component.requests[i]);
    }
    for (std::size_t i = 1; i < component.taxis.size(); ++i) {
      EXPECT_LT(component.taxis[i - 1], component.taxis[i]);
    }
    for (const int r : component.requests) {
      EXPECT_EQ(request_owner[static_cast<std::size_t>(r)], -1);  // disjoint
      request_owner[static_cast<std::size_t>(r)] = static_cast<int>(c);
    }
    for (const int t : component.taxis) {
      EXPECT_EQ(taxi_owner[static_cast<std::size_t>(t)], -1);
      taxi_owner[static_cast<std::size_t>(t)] = static_cast<int>(c);
    }
    largest = std::max(largest, component.requests.size());
  }
  EXPECT_EQ(partition.largest_component_requests, largest);

  // Closure: every listed pair stays inside one component, and agents in
  // no component are exactly those with empty lists on both sides.
  std::size_t isolated_requests = 0, isolated_taxis = 0;
  for (std::size_t r = 0; r < profile.request_count(); ++r) {
    for (const int t : profile.request_list(r)) {
      EXPECT_EQ(request_owner[r], taxi_owner[static_cast<std::size_t>(t)]);
    }
    if (request_owner[r] == -1) {
      EXPECT_TRUE(profile.request_list(r).empty());
      ++isolated_requests;
    }
  }
  for (std::size_t t = 0; t < profile.taxi_count(); ++t) {
    if (taxi_owner[t] == -1) {
      EXPECT_TRUE(profile.taxi_list(t).empty());
      ++isolated_taxis;
    }
  }
  EXPECT_EQ(partition.isolated_requests, isolated_requests);
  EXPECT_EQ(partition.isolated_taxis, isolated_taxis);
}

TEST(ExtractComponents, GiantFrameCollapsesToOneComponent) {
  Rng rng(8);
  const Frame frame = giant_frame(rng, 8, 10);
  const PreferenceProfile profile = profile_of(frame, PreferenceParams{});
  const ComponentPartition partition = extract_components(profile);
  ASSERT_EQ(partition.components.size(), 1u);
  EXPECT_EQ(partition.components[0].requests.size(), 10u);
  EXPECT_EQ(partition.components[0].taxis.size(), 8u);
  EXPECT_EQ(partition.isolated_requests, 0u);
  EXPECT_EQ(partition.isolated_taxis, 0u);
}

TEST(ShardedGaleShapley, MatchesSerialAcrossGeometriesAndSides) {
  Rng rng(21);
  for (int trial = 0; trial < 6; ++trial) {
    const Frame frames[] = {random_frame(rng, 10, 14), clustered_frame(rng, 3, 4, 5),
                            giant_frame(rng, 7, 9)};
    for (const Frame& frame : frames) {
      const PreferenceProfile profile = profile_of(frame, finite_params());
      expect_equal(gale_shapley_requests(profile),
                   sharded_gale_shapley(profile, ProposalSide::kPassengers),
                   "passenger side");
      expect_equal(gale_shapley_taxis(profile),
                   sharded_gale_shapley(profile, ProposalSide::kTaxis), "taxi side");
    }
  }
}

TEST(ShardedEnumeration, MatchesTheSerialTaxiOptimalPath) {
  Rng rng(22);
  for (int trial = 0; trial < 6; ++trial) {
    const Frame frames[] = {random_frame(rng, 8, 10), clustered_frame(rng, 3, 3, 4),
                            giant_frame(rng, 6, 7)};
    for (const Frame& frame : frames) {
      const PreferenceProfile profile = profile_of(frame, finite_params());
      for (const std::size_t cap : {std::size_t{512}, std::size_t{1}}) {
        AllStableOptions options;
        options.max_matchings = cap;
        const AllStableResult all = enumerate_all_stable(profile, options);
        const Matching serial = all.truncated
                                    ? gale_shapley_taxis(profile)
                                    : select_taxi_optimal(all.matchings, profile);
        expect_equal(serial, sharded_taxi_optimal_via_enumeration(profile, cap),
                     "enumeration path");
      }
    }
  }
}

TEST(ShardedGaleShapley, EmptyFramesComeBackAllDummy) {
  const PreferenceProfile no_requests = PreferenceProfile::from_scores({}, {}, 5);
  for (const ProposalSide side : {ProposalSide::kPassengers, ProposalSide::kTaxis}) {
    const Matching matching = sharded_gale_shapley(no_requests, side);
    EXPECT_TRUE(matching.request_to_taxi.empty());
    EXPECT_EQ(matching.taxi_to_request, (std::vector<int>(5, kDummy)));
  }

  const PreferenceProfile no_taxis = PreferenceProfile::from_scores(
      std::vector<std::vector<double>>(3), std::vector<std::vector<double>>(3), 0);
  for (const ProposalSide side : {ProposalSide::kPassengers, ProposalSide::kTaxis}) {
    const Matching matching = sharded_gale_shapley(no_taxis, side);
    EXPECT_EQ(matching.request_to_taxi, (std::vector<int>(3, kDummy)));
    EXPECT_TRUE(matching.taxi_to_request.empty());
  }
  expect_equal(sharded_taxi_optimal_via_enumeration(no_requests, 512),
               gale_shapley_taxis(no_requests), "enumeration, zero requests");
  expect_equal(sharded_taxi_optimal_via_enumeration(no_taxis, 512),
               gale_shapley_taxis(no_taxis), "enumeration, zero taxis");
}

TEST(ShardedGaleShapley, SerialFallbackKnobChangesNothing) {
  Rng rng(23);
  const PreferenceProfile profile =
      profile_of(clustered_frame(rng, 3, 4, 5), finite_params());
  ShardOptions serial;
  serial.parallel = false;
  for (const ProposalSide side : {ProposalSide::kPassengers, ProposalSide::kTaxis}) {
    expect_equal(sharded_gale_shapley(profile, side, serial),
                 sharded_gale_shapley(profile, side), "parallel knob");
  }
  expect_equal(sharded_taxi_optimal_via_enumeration(profile, 512, serial),
               sharded_taxi_optimal_via_enumeration(profile, 512),
               "parallel knob, enumeration");
}

TEST(ShardedGaleShapley, DeterministicMergeCannotBeDisabled) {
  Rng rng(24);
  const PreferenceProfile profile = profile_of(random_frame(rng, 4, 4), finite_params());
  ShardOptions options;
  options.deterministic_merge = false;
  EXPECT_THROW(sharded_gale_shapley(profile, ProposalSide::kPassengers, options),
               ContractViolation);
  EXPECT_THROW(sharded_taxi_optimal_via_enumeration(profile, 512, options),
               ContractViolation);
}

TEST(RestrictProfile, IsExactlyTheGlobalProfileRenamed) {
  Rng rng(25);
  const PreferenceProfile profile =
      profile_of(clustered_frame(rng, 3, 4, 5), finite_params());
  const ComponentPartition partition = extract_components(profile);
  ASSERT_GE(partition.components.size(), 3u);
  for (const ShardComponent& component : partition.components) {
    const PreferenceProfile sub =
        restrict_profile(profile, component.requests, component.taxis);
    ASSERT_EQ(sub.request_count(), component.requests.size());
    ASSERT_EQ(sub.taxi_count(), component.taxis.size());
    for (std::size_t lr = 0; lr < sub.request_count(); ++lr) {
      const std::size_t gr = static_cast<std::size_t>(component.requests[lr]);
      const std::vector<int>& global_list = profile.request_list(gr);
      const std::vector<int>& local_list = sub.request_list(lr);
      ASSERT_EQ(local_list.size(), global_list.size());
      for (std::size_t i = 0; i < local_list.size(); ++i) {
        // Same taxi (renamed), same score, same rank position.
        const std::size_t gt =
            static_cast<std::size_t>(component.taxis[local_list[i]]);
        EXPECT_EQ(static_cast<int>(gt), global_list[i]);
        EXPECT_EQ(sub.passenger_score(lr, static_cast<std::size_t>(local_list[i])),
                  profile.passenger_score(gr, gt));
      }
    }
    for (std::size_t lt = 0; lt < sub.taxi_count(); ++lt) {
      const std::size_t gt = static_cast<std::size_t>(component.taxis[lt]);
      const std::vector<int>& global_list = profile.taxi_list(gt);
      const std::vector<int>& local_list = sub.taxi_list(lt);
      ASSERT_EQ(local_list.size(), global_list.size());
      for (std::size_t i = 0; i < local_list.size(); ++i) {
        const std::size_t gr =
            static_cast<std::size_t>(component.requests[local_list[i]]);
        EXPECT_EQ(static_cast<int>(gr), global_list[i]);
        EXPECT_EQ(sub.taxi_score(lt, static_cast<std::size_t>(local_list[i])),
                  profile.taxi_score(gt, gr));
      }
    }
  }
}

std::vector<sim::DispatchAssignment> run_dispatcher(const Frame& frame,
                                                    StableDispatcherOptions options,
                                                    bool parallel) {
  options.sharding.parallel = parallel;
  StableDispatcher dispatcher(std::move(options), FromConfig{});
  return dispatcher.dispatch(frame.context());
}

std::vector<sim::DispatchAssignment> run_dispatcher(
    const Frame& frame, SharingStableDispatcherOptions options, bool parallel) {
  options.params.sharding.parallel = parallel;
  SharingStableDispatcher dispatcher(std::move(options), FromConfig{});
  return dispatcher.dispatch(frame.context());
}

void expect_same_assignments(const std::vector<sim::DispatchAssignment>& a,
                             const std::vector<sim::DispatchAssignment>& b,
                             const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].taxi, b[i].taxi) << what;
    EXPECT_EQ(a[i].requests, b[i].requests) << what;
    ASSERT_EQ(a[i].route.stops.size(), b[i].route.stops.size()) << what;
    for (std::size_t s = 0; s < a[i].route.stops.size(); ++s) {
      EXPECT_EQ(a[i].route.stops[s].request, b[i].route.stops[s].request) << what;
      EXPECT_EQ(a[i].route.stops[s].is_pickup, b[i].route.stops[s].is_pickup) << what;
    }
  }
}

// ---------------------------------------------------------------------------
// Warm-start seeding (DESIGN.md "Incremental frame engine"): any hint
// vector whatsoever must leave the output bit-identical to the unseeded
// run — the seeds are a proposal-count optimization, never a result.

TEST(WarmSeed, PinnedTwoByTwoRejectsTheOppositeOptimum) {
  // u1: t1 > t2, u2: t2 > t1; t1: u2 > u1, t2: u1 > u2. The two stable
  // matchings are the passenger optimum {u1-t1, u2-t2} and the taxi
  // optimum {u1-t2, u2-t1}. Seeding one side's DA with the *other*
  // side's optimum is the classic trap: every seeded pair is mutually
  // acceptable and its receiver free, so naive revalidation would pin
  // the proposer-pessimal matching. The sequential certificate rule
  // must reject both seeds (no already-installed hold justifies the
  // prefix rejections) and fall back to the cold result.
  const PreferenceProfile profile = PreferenceProfile::from_scores(
      {{1.0, 2.0}, {2.0, 1.0}}, {{2.0, 1.0}, {1.0, 2.0}}, 2);

  const std::vector<int> passenger_optimum = {0, 1};
  const std::vector<int> taxi_optimum = {1, 0};

  const Matching cold_p = sharded_gale_shapley(profile, ProposalSide::kPassengers);
  ASSERT_EQ(cold_p.request_to_taxi, passenger_optimum);
  expect_equal(cold_p,
               sharded_gale_shapley(profile, ProposalSide::kPassengers, {}, taxi_optimum),
               "adversarial seed, passenger side");

  const Matching cold_t = sharded_gale_shapley(profile, ProposalSide::kTaxis);
  ASSERT_EQ(cold_t.request_to_taxi, taxi_optimum);
  expect_equal(cold_t,
               sharded_gale_shapley(profile, ProposalSide::kTaxis, {}, passenger_optimum),
               "adversarial seed, taxi side");

  // The matching's own side *is* reachable by a DA prefix, so those
  // seeds must validate and be kept verbatim.
  expect_equal(cold_p,
               sharded_gale_shapley(profile, ProposalSide::kPassengers, {},
                                    passenger_optimum),
               "own optimum, passenger side");
  expect_equal(cold_t,
               sharded_gale_shapley(profile, ProposalSide::kTaxis, {}, taxi_optimum),
               "own optimum, taxi side");
}

TEST(WarmSeed, ArbitrarySeedsNeverChangeTheOutput) {
  Rng rng(31);
  for (int trial = 0; trial < 4; ++trial) {
    const Frame frames[] = {random_frame(rng, 10, 14), clustered_frame(rng, 3, 4, 5),
                            giant_frame(rng, 7, 9)};
    for (const Frame& frame : frames) {
      const PreferenceProfile profile = profile_of(frame, finite_params());
      const std::size_t n = profile.request_count();
      const int taxis = static_cast<int>(profile.taxi_count());
      for (const ProposalSide side : {ProposalSide::kPassengers, ProposalSide::kTaxis}) {
        const Matching cold = sharded_gale_shapley(profile, side);

        std::vector<int> rotated(n), garbage(n), pile(n, 0);
        for (std::size_t r = 0; r < n; ++r) {
          rotated[r] = cold.request_to_taxi[(r + 1) % n];
          garbage[r] = rng.bernoulli(0.3)
                           ? kDummy
                           : static_cast<int>(rng.uniform_index(
                                 static_cast<std::uint64_t>(taxis)));
        }
        expect_equal(cold, sharded_gale_shapley(profile, side, {}, cold.request_to_taxi),
                     "previous-frame seed");
        expect_equal(cold, sharded_gale_shapley(profile, side, {}, rotated),
                     "rotated seed");
        expect_equal(cold, sharded_gale_shapley(profile, side, {}, garbage),
                     "garbage seed");
        // Everyone hints the same taxi: a maximal duplicate-claim pile-up.
        expect_equal(cold, sharded_gale_shapley(profile, side, {}, pile),
                     "duplicate-claim seed");
      }
    }
  }
}

TEST(WarmSeed, OwnMatchingSeedsInstallAndSkipProposals) {
  Rng rng(33);
  const Frame frame = giant_frame(rng, 14, 18);
  const PreferenceProfile profile = profile_of(frame, PreferenceParams{});
  obs::TraceSink sink;
  obs::Activation guard(sink);
  const auto counter = [](const obs::FrameTrace& trace, obs::Counter which) {
    return trace.counters[static_cast<std::size_t>(which)];
  };

  sink.begin_frame(0, 0.0);
  const Matching cold = sharded_gale_shapley(profile, ProposalSide::kPassengers);
  const obs::FrameTrace cold_trace = sink.end_frame();
  EXPECT_EQ(counter(cold_trace, obs::Counter::kDaWarmSeeds), 0u);

  sink.begin_frame(1, 60.0);
  const Matching warm =
      sharded_gale_shapley(profile, ProposalSide::kPassengers, {}, cold.request_to_taxi);
  const obs::FrameTrace warm_trace = sink.end_frame();
  expect_equal(cold, warm, "seeded re-run");
  EXPECT_GT(counter(warm_trace, obs::Counter::kDaWarmSeeds), 0u);
  EXPECT_LT(counter(warm_trace, obs::Counter::kProposals),
            counter(cold_trace, obs::Counter::kProposals));
}

TEST(Dispatchers, AllFourAgreeShardedVersusSerialEndToEnd) {
  Rng rng(26);
  for (int trial = 0; trial < 4; ++trial) {
    const Frame frames[] = {random_frame(rng, 9, 12), clustered_frame(rng, 3, 3, 4),
                            giant_frame(rng, 6, 8)};
    for (const Frame& frame : frames) {
      StableDispatcherOptions nstd_p;
      nstd_p.preference = finite_params();
      StableDispatcherOptions nstd_t = nstd_p;
      nstd_t.side = ProposalSide::kTaxis;
      nstd_t.taxi_side_via_enumeration = true;
      SharingStableDispatcherOptions std_p;
      std_p.params.preference = finite_params();
      SharingStableDispatcherOptions std_t = std_p;
      std_t.params.side = ProposalSide::kTaxis;

      expect_same_assignments(run_dispatcher(frame, nstd_p, true),
                              run_dispatcher(frame, nstd_p, false), "NSTD-P");
      expect_same_assignments(run_dispatcher(frame, nstd_t, true),
                              run_dispatcher(frame, nstd_t, false), "NSTD-T");
      expect_same_assignments(run_dispatcher(frame, std_p, true),
                              run_dispatcher(frame, std_p, false), "STD-P");
      expect_same_assignments(run_dispatcher(frame, std_t, true),
                              run_dispatcher(frame, std_t, false), "STD-T");
    }
  }
}

/// One step of frame churn for the warm-memory tests. Beyond the random
/// drop/move/arrive mix, it pins the two adversarial shapes the warm
/// path must absorb: a taxi the previous matching engaged leaves the
/// fleet (its hint no longer maps), and a matched request cancels while
/// its taxi stays (the taxi's hint goes unclaimed). Matched requests
/// otherwise deliberately stay pending — the re-dispatch shape in which
/// hints actually fire.
void churn_dispatch_frame(Frame& frame, Rng& rng,
                          const std::vector<sim::DispatchAssignment>& previous,
                          trace::RequestId& next_request_id,
                          trace::TaxiId& next_taxi_id) {
  if (!previous.empty()) {
    const trace::TaxiId departing = previous.front().taxi;
    std::erase_if(frame.taxis,
                  [&](const trace::Taxi& taxi) { return taxi.id == departing; });
    const trace::RequestId cancelled = previous.back().requests.front();
    std::erase_if(frame.requests,
                  [&](const trace::Request& r) { return r.id == cancelled; });
  }
  std::erase_if(frame.requests,
                [&](const trace::Request&) { return rng.bernoulli(0.15); });
  for (trace::Taxi& taxi : frame.taxis) {
    if (rng.bernoulli(0.3)) {
      taxi.location.x += rng.uniform(-1.0, 1.0);
      taxi.location.y += rng.uniform(-1.0, 1.0);
    }
  }
  for (int fresh = 0; fresh < 3; ++fresh) {
    trace::Request request;
    request.id = next_request_id++;
    request.pickup = {rng.uniform(0.0, 30.0), rng.uniform(0.0, 30.0)};
    request.dropoff = {request.pickup.x + rng.uniform(-4.0, 4.0),
                       request.pickup.y + rng.uniform(-4.0, 4.0)};
    frame.requests.push_back(request);
  }
  frame.taxis.push_back(
      {next_taxi_id++, {rng.uniform(0.0, 30.0), rng.uniform(0.0, 30.0)}, 4});
}

TEST(Dispatchers, WarmStartMemoryMatchesColdAcrossChurnedFrames) {
  Rng rng(37);
  for (const ProposalSide side : {ProposalSide::kPassengers, ProposalSide::kTaxis}) {
    Frame frame = random_frame(rng, 12, 16);
    trace::RequestId next_request_id = 900;
    trace::TaxiId next_taxi_id = 100;

    StableDispatcherOptions nonsharing;
    nonsharing.preference = finite_params();
    nonsharing.side = side;
    StableDispatcherOptions nonsharing_cold = nonsharing;
    nonsharing_cold.warm_start_da = false;
    StableDispatcher warm(nonsharing, FromConfig{});
    StableDispatcher cold(nonsharing_cold, FromConfig{});

    SharingStableDispatcherOptions sharing;
    sharing.params.preference = finite_params();
    sharing.params.side = side;
    SharingStableDispatcherOptions sharing_cold = sharing;
    sharing_cold.warm_start_da = false;
    SharingStableDispatcher sharing_warm(sharing, FromConfig{});
    SharingStableDispatcher sharing_cold_dispatcher(sharing_cold, FromConfig{});

    std::vector<sim::DispatchAssignment> previous;
    for (int step = 0; step < 8; ++step) {
      const sim::DispatchContext context = frame.context();
      const auto warm_result = warm.dispatch(context);
      expect_same_assignments(warm_result, cold.dispatch(context), "non-sharing churn");
      expect_same_assignments(sharing_warm.dispatch(context),
                              sharing_cold_dispatcher.dispatch(context),
                              "sharing churn");
      previous = warm_result;
      churn_dispatch_frame(frame, rng, previous, next_request_id, next_taxi_id);
    }
  }
}

}  // namespace
}  // namespace o2o::core
