#include "core/all_stable.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "tests/core/test_helpers.h"
#include "util/contracts.h"
#include "util/rng.h"

namespace o2o::core {
namespace {

using testing::random_profile;

std::set<std::vector<int>> as_set(const std::vector<Matching>& matchings) {
  std::set<std::vector<int>> keys;
  for (const Matching& m : matchings) keys.insert(m.request_to_taxi);
  return keys;
}

/// The classic 3x3 Latin-square instance with exactly three stable
/// matchings (request-optimal, median, taxi-optimal).
PreferenceProfile latin_square_3x3() {
  // Request r's score for taxi t encodes the preference ranks:
  //   r0: t0 > t1 > t2 ; r1: t1 > t2 > t0 ; r2: t2 > t0 > t1
  //   t0: r1 > r2 > r0 ; t1: r2 > r0 > r1 ; t2: r0 > r1 > r2
  std::vector<std::vector<double>> passenger{{1, 2, 3}, {3, 1, 2}, {2, 3, 1}};
  std::vector<std::vector<double>> taxi{{3, 2, 1}, {1, 3, 2}, {2, 1, 3}};
  return PreferenceProfile::from_scores(std::move(passenger), std::move(taxi), 3);
}

TEST(BreakDispatch, Rule3RefusesUnservedRequests) {
  // Two requests, one taxi: one request is unserved; breaking it fails.
  const auto profile = PreferenceProfile::from_scores({{1.0}, {2.0}}, {{1.0}, {2.0}}, 1);
  const Matching schedule = gale_shapley_requests(profile);
  ASSERT_EQ(schedule.request_to_taxi[1], kDummy);
  EXPECT_FALSE(break_dispatch(profile, schedule, 1).has_value());
}

TEST(BreakDispatch, SucceedsOnTheLatinSquare) {
  const auto profile = latin_square_3x3();
  const Matching passenger_optimal = gale_shapley_requests(profile);
  EXPECT_EQ(passenger_optimal.request_to_taxi, (std::vector<int>{0, 1, 2}));
  const auto next = break_dispatch(profile, passenger_optimal, 0);
  ASSERT_TRUE(next.has_value());
  EXPECT_TRUE(is_stable(profile, *next));
  EXPECT_EQ(next->request_to_taxi, (std::vector<int>{1, 2, 0}));
}

TEST(BreakDispatch, ResultIsAlwaysStableOrNull) {
  Rng rng(81);
  for (int trial = 0; trial < 30; ++trial) {
    const auto profile = random_profile(rng, 5, 5, 0.2);
    const Matching schedule = gale_shapley_requests(profile);
    for (std::size_t j = 0; j < profile.request_count(); ++j) {
      const auto next = break_dispatch(profile, schedule, j);
      if (next.has_value()) {
        EXPECT_TRUE(is_stable(profile, *next));
        EXPECT_NE(next->request_to_taxi, schedule.request_to_taxi);
      }
    }
  }
}

TEST(BreakDispatch, BrokenRequestGetsAStrictlyWorsePartner) {
  Rng rng(82);
  for (int trial = 0; trial < 30; ++trial) {
    const auto profile = random_profile(rng, 5, 5, 0.2);
    const Matching schedule = gale_shapley_requests(profile);
    for (std::size_t j = 0; j < profile.request_count(); ++j) {
      const auto next = break_dispatch(profile, schedule, j);
      if (!next.has_value()) continue;
      EXPECT_TRUE(profile.request_prefers(j, schedule.request_to_taxi[j],
                                          next->request_to_taxi[j]));
    }
  }
}

TEST(AllStable, LatinSquareHasExactlyThreeMatchings) {
  const auto profile = latin_square_3x3();
  const AllStableResult result = enumerate_all_stable(profile);
  EXPECT_EQ(result.matchings.size(), 3u);
  EXPECT_FALSE(result.truncated);
  const auto keys = as_set(result.matchings);
  EXPECT_TRUE(keys.count({0, 1, 2}));  // passenger-optimal
  EXPECT_TRUE(keys.count({1, 2, 0}));  // median
  EXPECT_TRUE(keys.count({2, 0, 1}));  // taxi-optimal
}

TEST(AllStable, FirstMatchingIsThePassengerOptimalOne) {
  const auto profile = latin_square_3x3();
  const AllStableResult result = enumerate_all_stable(profile);
  EXPECT_EQ(result.matchings.front().request_to_taxi,
            gale_shapley_requests(profile).request_to_taxi);
}

struct EnumShape {
  std::uint64_t seed;
  std::size_t requests;
  std::size_t taxis;
  double unacceptable;
};

class AllStableVsBruteForce : public ::testing::TestWithParam<EnumShape> {};

TEST_P(AllStableVsBruteForce, EnumerationIsExactlyTheStableSet) {
  const EnumShape shape = GetParam();
  Rng rng(shape.seed);
  for (int trial = 0; trial < 15; ++trial) {
    const auto profile =
        random_profile(rng, shape.requests, shape.taxis, shape.unacceptable);
    const AllStableResult result = enumerate_all_stable(profile);
    const auto expected = as_set(brute_force_all_stable(profile));
    EXPECT_EQ(as_set(result.matchings), expected) << "trial " << trial;
  }
}

TEST_P(AllStableVsBruteForce, Theorem4EachMatchingObtainedExactlyOnce) {
  const EnumShape shape = GetParam();
  Rng rng(shape.seed + 500);
  for (int trial = 0; trial < 15; ++trial) {
    const auto profile =
        random_profile(rng, shape.requests, shape.taxis, shape.unacceptable);
    const AllStableResult result = enumerate_all_stable(profile);
    // Every successful BreakDispatch yields a matching not seen before
    // (Theorem 4); the passenger-optimal one is found without a break.
    EXPECT_EQ(result.break_successes, result.matchings.size() - 1) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, AllStableVsBruteForce,
    ::testing::Values(EnumShape{301, 3, 3, 0.0}, EnumShape{302, 4, 4, 0.0},
                      EnumShape{303, 5, 5, 0.0}, EnumShape{304, 5, 5, 0.3},
                      EnumShape{305, 6, 4, 0.2}, EnumShape{306, 4, 6, 0.2},
                      EnumShape{307, 6, 6, 0.5}));

TEST(AllStable, TruncationCapIsHonoured) {
  const auto profile = latin_square_3x3();
  AllStableOptions options;
  options.max_matchings = 2;
  const AllStableResult result = enumerate_all_stable(profile, options);
  EXPECT_EQ(result.matchings.size(), 2u);
  EXPECT_TRUE(result.truncated);
}

TEST(AllStable, SingleStableMatchingInstances) {
  // Aligned preferences: a unique stable matching; enumeration finds
  // nothing else.
  const auto profile = PreferenceProfile::from_scores(
      {{1.0, 2.0}, {2.0, 1.0}}, {{1.0, 2.0}, {2.0, 1.0}}, 2);
  const AllStableResult result = enumerate_all_stable(profile);
  EXPECT_EQ(result.matchings.size(), 1u);
  EXPECT_EQ(result.break_successes, 0u);
}

TEST(BruteForce, GuardsAgainstLargeInstances) {
  Rng rng(83);
  const auto profile = random_profile(rng, 8, 3, 0.0);
  EXPECT_THROW(brute_force_all_stable(profile), ContractViolation);
}

}  // namespace
}  // namespace o2o::core
