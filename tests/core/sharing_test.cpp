#include "core/sharing.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/preferences.h"
#include "core/stable_matching.h"
#include "tests/core/test_helpers.h"
#include "util/rng.h"

namespace o2o::core {
namespace {

const geo::EuclideanOracle kOracle;

trace::Taxi make_taxi(trace::TaxiId id, geo::Point location, int seats = 4) {
  trace::Taxi taxi;
  taxi.id = id;
  taxi.location = location;
  taxi.seats = seats;
  return taxi;
}

trace::Request make_request(trace::RequestId id, geo::Point pickup, geo::Point dropoff,
                            int seats = 1) {
  trace::Request request;
  request.id = id;
  request.pickup = pickup;
  request.dropoff = dropoff;
  request.seats = seats;
  return request;
}

SharingParams default_params() {
  SharingParams params;
  params.grouping.detour_threshold_km = 5.0;
  return params;
}

TEST(PackRequests, ParallelTripsGetPacked) {
  const std::vector<trace::Request> requests{
      make_request(0, {0, 0}, {10, 0}), make_request(1, {0.3, 0}, {10.3, 0}),
      make_request(2, {50, 50}, {55, 50})};
  const SharingUnits units = pack_requests(requests, kOracle, default_params());
  EXPECT_EQ(units.packed_groups, 1u);
  EXPECT_GE(units.feasible_groups, 1u);
  ASSERT_EQ(units.units.size(), 2u);  // the pair + the loner
  EXPECT_EQ(units.units[0], (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(units.units[1], (std::vector<std::size_t>{2}));
}

TEST(PackRequests, NoSharingWhenThetaIsZeroAndTripsDiverge) {
  const std::vector<trace::Request> requests{make_request(0, {0, 0}, {10, 0}),
                                             make_request(1, {0, 1}, {-10, 5})};
  SharingParams params = default_params();
  params.grouping.detour_threshold_km = 0.0;
  const SharingUnits units = pack_requests(requests, kOracle, params);
  EXPECT_EQ(units.packed_groups, 0u);
  EXPECT_EQ(units.units.size(), 2u);
}

TEST(PackRequests, EveryRequestAppearsExactlyOnce) {
  Rng rng(55);
  std::vector<trace::Request> requests;
  for (int i = 0; i < 12; ++i) {
    requests.push_back(make_request(i, {rng.uniform(0, 4), rng.uniform(0, 4)},
                                    {rng.uniform(6, 10), rng.uniform(6, 10)}));
  }
  const SharingUnits units = pack_requests(requests, kOracle, default_params());
  std::vector<int> seen(requests.size(), 0);
  for (const auto& unit : units.units) {
    for (std::size_t index : unit) ++seen[index];
  }
  for (int count : seen) EXPECT_EQ(count, 1);
}

TEST(PackRequests, SolverChoicesAllProduceValidPackings) {
  Rng rng(56);
  std::vector<trace::Request> requests;
  for (int i = 0; i < 10; ++i) {
    requests.push_back(make_request(i, {rng.uniform(0, 3), rng.uniform(0, 3)},
                                    {rng.uniform(6, 9), rng.uniform(6, 9)}));
  }
  SharingParams params = default_params();
  std::size_t local_packed = 0, greedy_packed = 0, exact_packed = 0;
  params.packing = PackingSolver::kLocalSearch;
  local_packed = pack_requests(requests, kOracle, params).packed_groups;
  params.packing = PackingSolver::kGreedy;
  greedy_packed = pack_requests(requests, kOracle, params).packed_groups;
  params.packing = PackingSolver::kExact;
  // Exact may exceed its B&B budget on dense inputs; only run when small.
  const auto feasible =
      packing::enumerate_share_groups(requests, kOracle, params.grouping, 4);
  if (feasible.size() <= 30) {
    exact_packed = pack_requests(requests, kOracle, params).packed_groups;
    EXPECT_GE(exact_packed, local_packed);
  }
  EXPECT_GE(local_packed, greedy_packed);
}

TEST(PackRequests, RiderObjectivePrefersTheTripleOverAPair) {
  // Three compatible riders: under kCount the pair {0,1} (smaller set,
  // same unit weight) blocks the triple; under kRiders the triple's
  // weight 3 wins and everyone pools.
  const std::vector<trace::Request> requests{make_request(0, {0, 0}, {10, 0}),
                                             make_request(1, {0.2, 0}, {10.2, 0}),
                                             make_request(2, {0.4, 0}, {10.4, 0})};
  SharingParams params = default_params();
  params.objective = PackingObjective::kCount;
  const SharingUnits by_count = pack_requests(requests, kOracle, params);
  EXPECT_EQ(by_count.units.front().size(), 2u);
  params.objective = PackingObjective::kRiders;
  const SharingUnits by_riders = pack_requests(requests, kOracle, params);
  EXPECT_EQ(by_riders.packed_groups, 1u);
  EXPECT_EQ(by_riders.units.front().size(), 3u);
}

TEST(PackRequests, SavingsObjectivePrefersTheHighSavingsPair) {
  // {0,1} are long parallel trips (big savings); {2,3} short ones. Only
  // one of each family can be served... make them overlap via a shared
  // rider so the objectives disagree: {0,1} saves ~10 km, {1,2} saves
  // ~2 km. Count ties (both single groups); savings must pick {0,1}.
  const std::vector<trace::Request> requests{make_request(0, {0, 0}, {12, 0}),
                                             make_request(1, {0.2, 0}, {12.2, 0}),
                                             make_request(2, {0.4, 0}, {2.4, 0})};
  SharingParams params = default_params();
  params.grouping.max_group_size = 2;
  params.objective = PackingObjective::kSavings;
  const SharingUnits units = pack_requests(requests, kOracle, params);
  ASSERT_GE(units.packed_groups, 1u);
  EXPECT_EQ(units.units.front(), (std::vector<std::size_t>{0, 1}));
}

TEST(DispatchSharing, PairSharesOneTaxi) {
  const std::vector<trace::Taxi> taxis{make_taxi(0, {-1, 0})};
  const std::vector<trace::Request> requests{make_request(0, {0, 0}, {10, 0}),
                                             make_request(1, {0.5, 0}, {9.5, 0})};
  const SharingOutcome outcome =
      dispatch_sharing(taxis, requests, kOracle, default_params());
  ASSERT_EQ(outcome.assignments.size(), 1u);
  const SharedAssignment& assignment = outcome.assignments[0];
  EXPECT_EQ(assignment.taxi_index, 0u);
  EXPECT_EQ(assignment.request_indices.size(), 2u);
  EXPECT_EQ(assignment.route.stop_count(), 4u);
  EXPECT_TRUE(routing::respects_precedence(assignment.route));
  EXPECT_TRUE(outcome.unserved_request_indices.empty());
}

TEST(DispatchSharing, SingletonScoresReduceToNonSharingModel) {
  // One far-apart request per taxi: no sharing is feasible, so the unit
  // scores must equal D(t, r.s) and D(t, r.s) - alpha D(r.s, r.d).
  const std::vector<trace::Taxi> taxis{make_taxi(0, {0, 1})};
  const std::vector<trace::Request> requests{make_request(0, {0, 0}, {4, 0})};
  SharingParams params = default_params();
  params.preference.alpha = 1.0;
  params.preference.beta = 1.0;
  const SharingOutcome outcome = dispatch_sharing(taxis, requests, kOracle, params);
  ASSERT_EQ(outcome.assignments.size(), 1u);
  EXPECT_NEAR(outcome.assignments[0].passenger_score, 1.0, 1e-9);
  // D_ck(t) - 2 * D = (1 + 4) - 2 * 4 = -3 == D(t,r.s) - alpha*D = 1 - 4.
  EXPECT_NEAR(outcome.assignments[0].taxi_score, -3.0, 1e-9);
}

TEST(DispatchSharing, UnservedWhenTaxiLacksSeats) {
  const std::vector<trace::Taxi> taxis{make_taxi(0, {0, 0}, /*seats=*/1)};
  const std::vector<trace::Request> requests{make_request(0, {1, 0}, {2, 0}, /*seats=*/3)};
  const SharingOutcome outcome =
      dispatch_sharing(taxis, requests, kOracle, default_params());
  EXPECT_TRUE(outcome.assignments.empty());
  EXPECT_EQ(outcome.unserved_request_indices, (std::vector<std::size_t>{0}));
}

TEST(DispatchSharing, PassengerThresholdLeavesFarRequestsUnserved) {
  const std::vector<trace::Taxi> taxis{make_taxi(0, {100, 100})};
  const std::vector<trace::Request> requests{make_request(0, {0, 0}, {5, 0})};
  SharingParams params = default_params();
  params.preference.passenger_threshold_km = 10.0;
  const SharingOutcome outcome = dispatch_sharing(taxis, requests, kOracle, params);
  EXPECT_TRUE(outcome.assignments.empty());
  EXPECT_EQ(outcome.unserved_request_indices.size(), 1u);
}

TEST(DispatchSharing, MoreRequestsThanTaxis_SharingServesMore) {
  // 4 near-identical trips, 1 taxi: Eq. 1 maximizes the number of packed
  // subsets, so the pool splits into two pairs; the lone taxi then serves
  // one pair (2 requests) instead of 1 under non-sharing dispatch.
  std::vector<trace::Request> requests;
  for (int i = 0; i < 4; ++i) {
    requests.push_back(
        make_request(i, {0.1 * i, 0}, {10 + 0.1 * i, 0}));
  }
  const std::vector<trace::Taxi> taxis{make_taxi(0, {-1, 0})};
  const SharingOutcome outcome =
      dispatch_sharing(taxis, requests, kOracle, default_params());
  EXPECT_EQ(outcome.packed_groups, 2u);
  ASSERT_EQ(outcome.assignments.size(), 1u);
  EXPECT_EQ(outcome.assignments[0].request_indices.size(), 2u);
  EXPECT_EQ(outcome.unserved_request_indices.size(), 2u);
}

TEST(DispatchSharing, TaxiSideAndPassengerSideBothStable) {
  Rng rng(58);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<trace::Taxi> taxis;
    for (int t = 0; t < 4; ++t) {
      taxis.push_back(make_taxi(t, {rng.uniform(0, 10), rng.uniform(0, 10)}));
    }
    std::vector<trace::Request> requests;
    for (int r = 0; r < 7; ++r) {
      requests.push_back(make_request(r, {rng.uniform(0, 10), rng.uniform(0, 10)},
                                      {rng.uniform(0, 10), rng.uniform(0, 10)}));
    }
    for (const ProposalSide side : {ProposalSide::kPassengers, ProposalSide::kTaxis}) {
      SharingParams params = default_params();
      params.side = side;
      const SharingOutcome outcome = dispatch_sharing(taxis, requests, kOracle, params);
      // Each taxi serves at most one unit; each request appears once.
      std::vector<int> taxi_used(taxis.size(), 0);
      std::vector<int> request_used(requests.size(), 0);
      for (const SharedAssignment& assignment : outcome.assignments) {
        EXPECT_EQ(taxi_used[assignment.taxi_index]++, 0);
        for (std::size_t index : assignment.request_indices) {
          EXPECT_EQ(request_used[index]++, 0);
        }
        EXPECT_TRUE(routing::respects_precedence(assignment.route));
      }
      for (std::size_t index : outcome.unserved_request_indices) {
        EXPECT_EQ(request_used[index]++, 0);
      }
      for (int used : request_used) EXPECT_EQ(used, 1);
    }
  }
}

TEST(DispatchSharing, PrefilterDoesNotChangeTheOutcome) {
  // The threshold prefilter is a pure optimization: results with and
  // without a finite threshold-bound must coincide when the threshold is
  // loose enough to never bind.
  Rng rng(59);
  std::vector<trace::Taxi> taxis;
  for (int t = 0; t < 3; ++t) {
    taxis.push_back(make_taxi(t, {rng.uniform(0, 5), rng.uniform(0, 5)}));
  }
  std::vector<trace::Request> requests;
  for (int r = 0; r < 5; ++r) {
    requests.push_back(make_request(r, {rng.uniform(0, 5), rng.uniform(0, 5)},
                                    {rng.uniform(0, 5), rng.uniform(0, 5)}));
  }
  SharingParams infinite = default_params();
  SharingParams loose = default_params();
  loose.preference.passenger_threshold_km = 1e6;
  const SharingOutcome a = dispatch_sharing(taxis, requests, kOracle, infinite);
  const SharingOutcome b = dispatch_sharing(taxis, requests, kOracle, loose);
  ASSERT_EQ(a.assignments.size(), b.assignments.size());
  for (std::size_t i = 0; i < a.assignments.size(); ++i) {
    EXPECT_EQ(a.assignments[i].taxi_index, b.assignments[i].taxi_index);
    EXPECT_EQ(a.assignments[i].request_indices, b.assignments[i].request_indices);
  }
}

}  // namespace
}  // namespace o2o::core
