#include "core/dispatchers.h"

#include <gtest/gtest.h>

#include "core/all_stable.h"
#include "util/rng.h"

namespace o2o::core {
namespace {

const geo::EuclideanOracle kOracle;

struct Frame {
  std::vector<trace::Taxi> taxis;
  std::vector<trace::Request> requests;

  sim::DispatchContext context() const {
    sim::DispatchContext ctx;
    ctx.idle_taxis = taxis;
    ctx.pending = requests;
    ctx.oracle = &kOracle;
    return ctx;
  }
};

Frame random_frame(Rng& rng, std::size_t taxis, std::size_t requests) {
  Frame frame;
  for (std::size_t t = 0; t < taxis; ++t) {
    frame.taxis.push_back({static_cast<trace::TaxiId>(t),
                           {rng.uniform(0, 15), rng.uniform(0, 15)},
                           4});
  }
  for (std::size_t r = 0; r < requests; ++r) {
    trace::Request request;
    request.id = static_cast<trace::RequestId>(100 + r);  // non-dense ids
    request.pickup = {rng.uniform(0, 15), rng.uniform(0, 15)};
    request.dropoff = {rng.uniform(0, 15), rng.uniform(0, 15)};
    frame.requests.push_back(request);
  }
  return frame;
}

TEST(StableDispatcher, NamesFollowTheSide) {
  StableDispatcherOptions options;
  EXPECT_EQ(StableDispatcher(options, FromConfig{}).name(), "NSTD-P");
  options.side = ProposalSide::kTaxis;
  EXPECT_EQ(StableDispatcher(options, FromConfig{}).name(), "NSTD-T");
}

TEST(StableDispatcher, EmptyFrameYieldsNothing) {
  StableDispatcher dispatcher(StableDispatcherOptions{}, FromConfig{});
  Frame frame;
  EXPECT_TRUE(dispatcher.dispatch(frame.context()).empty());
}

TEST(StableDispatcher, AssignmentsMirrorTheStableMatching) {
  Rng rng(41);
  for (int trial = 0; trial < 10; ++trial) {
    const Frame frame = random_frame(rng, 6, 9);
    StableDispatcherOptions options;
    options.preference.passenger_threshold_km = 9.0;
    options.preference.taxi_threshold_score = 2.0;
    StableDispatcher dispatcher(options, FromConfig{});
    const auto assignments = dispatcher.dispatch(frame.context());

    const PreferenceProfile profile = build_nonsharing_profile(
        frame.taxis, frame.requests, kOracle, options.preference);
    const Matching expected = gale_shapley_requests(profile);
    EXPECT_EQ(assignments.size(), expected.matched_count());
    for (const auto& assignment : assignments) {
      ASSERT_EQ(assignment.requests.size(), 1u);
      // Recover indices from ids and check the pair is the matched one.
      std::size_t r = 0, t = 0;
      for (std::size_t i = 0; i < frame.requests.size(); ++i) {
        if (frame.requests[i].id == assignment.requests[0]) r = i;
      }
      for (std::size_t i = 0; i < frame.taxis.size(); ++i) {
        if (frame.taxis[i].id == assignment.taxi) t = i;
      }
      EXPECT_EQ(expected.request_to_taxi[r], static_cast<int>(t));
      EXPECT_TRUE(assignment.route.start.has_value());
      EXPECT_EQ(assignment.route.stop_count(), 2u);
    }
  }
}

TEST(StableDispatcher, EnumerationPathMatchesTaxiProposing) {
  Rng rng(42);
  for (int trial = 0; trial < 5; ++trial) {
    const Frame frame = random_frame(rng, 5, 7);
    StableDispatcherOptions direct;
    direct.side = ProposalSide::kTaxis;
    StableDispatcherOptions enumerated = direct;
    enumerated.taxi_side_via_enumeration = true;
    StableDispatcher a(direct, FromConfig{}), b(enumerated, FromConfig{});
    const auto direct_out = a.dispatch(frame.context());
    const auto enumerated_out = b.dispatch(frame.context());
    ASSERT_EQ(direct_out.size(), enumerated_out.size());
    for (std::size_t i = 0; i < direct_out.size(); ++i) {
      EXPECT_EQ(direct_out[i].taxi, enumerated_out[i].taxi);
      EXPECT_EQ(direct_out[i].requests, enumerated_out[i].requests);
    }
  }
}

TEST(SharingStableDispatcher, NamesFollowTheSide) {
  SharingStableDispatcherOptions options;
  EXPECT_EQ(SharingStableDispatcher(options, FromConfig{}).name(), "STD-P");
  options.params.side = ProposalSide::kTaxis;
  EXPECT_EQ(SharingStableDispatcher(options, FromConfig{}).name(), "STD-T");
}

TEST(SharingStableDispatcher, EmitsGroupRoutesWithOriginalIds) {
  Frame frame;
  frame.taxis = {{7, {-1.0, 0.0}, 4}};
  trace::Request a;
  a.id = 50;
  a.pickup = {0, 0};
  a.dropoff = {8, 0};
  trace::Request b = a;
  b.id = 51;
  b.pickup = {0.4, 0};
  b.dropoff = {8.4, 0};
  frame.requests = {a, b};

  SharingStableDispatcherOptions options;
  options.params.grouping.detour_threshold_km = 5.0;
  SharingStableDispatcher dispatcher(options, FromConfig{});
  const auto assignments = dispatcher.dispatch(frame.context());
  ASSERT_EQ(assignments.size(), 1u);
  EXPECT_EQ(assignments[0].taxi, 7);
  EXPECT_EQ(assignments[0].requests, (std::vector<trace::RequestId>{50, 51}));
  for (const auto& stop : assignments[0].route.stops) {
    EXPECT_TRUE(stop.request == 50 || stop.request == 51);
  }
}

TEST(SharingStableDispatcher, CandidateCapKeepsAssignmentsValid) {
  Rng rng(43);
  const Frame frame = random_frame(rng, 12, 15);
  SharingStableDispatcherOptions options;
  options.params.candidate_taxis_per_unit = 3;
  SharingStableDispatcher dispatcher(options, FromConfig{});
  const auto assignments = dispatcher.dispatch(frame.context());
  std::vector<int> taxi_used(frame.taxis.size(), 0);
  for (const auto& assignment : assignments) {
    for (std::size_t i = 0; i < frame.taxis.size(); ++i) {
      if (frame.taxis[i].id == assignment.taxi) EXPECT_EQ(taxi_used[i]++, 0);
    }
    EXPECT_TRUE(routing::respects_precedence(assignment.route));
  }
}

}  // namespace
}  // namespace o2o::core
