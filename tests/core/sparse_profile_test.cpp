// Differential tests for the sparse, grid-pruned preference profile: on
// the same instance, the sparse path (spatial_prune with a finite
// passenger threshold) must reproduce the dense path's matchings exactly
// — pairs beyond the passenger threshold can never match, and dropping
// them preserves the relative order of every preference list.
#include <algorithm>
#include <gtest/gtest.h>

#include "core/all_stable.h"
#include "core/sharing.h"
#include "core/stable_matching.h"
#include "geo/road_network.h"
#include "index/spatial_grid.h"
#include "tests/core/test_helpers.h"
#include "util/rng.h"

namespace o2o::core {
namespace {

using testing::random_instance;

const geo::EuclideanOracle kEuclidean;
const geo::ManhattanOracle kManhattan;

PreferenceParams pruned_params() {
  PreferenceParams params;
  params.passenger_threshold_km = 3.0;
  return params;
}

PreferenceParams dense_params() {
  PreferenceParams params = pruned_params();
  params.spatial_prune = false;
  return params;
}

/// Sorted set of matchings for order-insensitive comparison.
std::vector<std::vector<int>> matching_set(const std::vector<Matching>& matchings) {
  std::vector<std::vector<int>> keys;
  keys.reserve(matchings.size());
  for (const Matching& matching : matchings) keys.push_back(matching.request_to_taxi);
  std::sort(keys.begin(), keys.end());
  return keys;
}

void expect_equivalent_profiles(const PreferenceProfile& dense,
                                const PreferenceProfile& sparse) {
  ASSERT_FALSE(dense.sparse());
  ASSERT_TRUE(sparse.sparse());
  ASSERT_EQ(dense.request_count(), sparse.request_count());
  ASSERT_EQ(dense.taxi_count(), sparse.taxi_count());
  for (std::size_t r = 0; r < dense.request_count(); ++r) {
    // Passenger-acceptable pairs are always within the grid radius, so
    // request lists — and with them acceptability and passenger scores —
    // must agree pair for pair.
    EXPECT_EQ(dense.request_list(r), sparse.request_list(r)) << "request " << r;
    for (std::size_t t = 0; t < dense.taxi_count(); ++t) {
      EXPECT_EQ(dense.request_rank(r, t), sparse.request_rank(r, t));
      EXPECT_EQ(dense.acceptable(r, t), sparse.acceptable(r, t));
      EXPECT_EQ(dense.passenger_score(r, t), sparse.passenger_score(r, t));
      // Taxi ranks/scores may legitimately differ for pairs beyond the
      // passenger radius (the sparse profile drops them); within the
      // sparse taxi list they must agree with the dense scores.
      if (sparse.taxi_rank(t, r) != PreferenceProfile::kNoRank) {
        EXPECT_EQ(dense.taxi_score(t, r), sparse.taxi_score(t, r));
      }
    }
  }
}

TEST(SparseProfile, MatchesDenseMatchingsOnRandomInstances) {
  Rng rng(211);
  for (int trial = 0; trial < 10; ++trial) {
    const auto instance = random_instance(rng, 12, 15);
    for (const geo::DistanceOracle* oracle :
         {static_cast<const geo::DistanceOracle*>(&kEuclidean),
          static_cast<const geo::DistanceOracle*>(&kManhattan)}) {
      const auto dense = build_nonsharing_profile(instance.taxis, instance.requests,
                                                  *oracle, dense_params());
      const auto sparse = build_nonsharing_profile(instance.taxis, instance.requests,
                                                   *oracle, pruned_params());
      expect_equivalent_profiles(dense, sparse);
      EXPECT_EQ(gale_shapley_requests(dense).request_to_taxi,
                gale_shapley_requests(sparse).request_to_taxi)
          << "trial " << trial;
      EXPECT_EQ(gale_shapley_taxis(dense).request_to_taxi,
                gale_shapley_taxis(sparse).request_to_taxi)
          << "trial " << trial;
    }
  }
}

TEST(SparseProfile, ExplicitBulkGridMatchesLocalGrid) {
  Rng rng(212);
  for (int trial = 0; trial < 5; ++trial) {
    const auto instance = random_instance(rng, 10, 20);
    const index::SpatialGrid grid(std::span<const trace::Taxi>(instance.taxis),
                                  /*cell_km=*/1.0);
    const auto with_grid = build_nonsharing_profile(instance.taxis, instance.requests,
                                                    kEuclidean, pruned_params(), &grid);
    const auto without = build_nonsharing_profile(instance.taxis, instance.requests,
                                                  kEuclidean, pruned_params());
    const auto dense = build_nonsharing_profile(instance.taxis, instance.requests,
                                                kEuclidean, dense_params());
    expect_equivalent_profiles(dense, with_grid);
    for (std::size_t r = 0; r < with_grid.request_count(); ++r) {
      EXPECT_EQ(with_grid.request_list(r), without.request_list(r));
    }
    EXPECT_EQ(gale_shapley_requests(with_grid).request_to_taxi,
              gale_shapley_requests(dense).request_to_taxi);
  }
}

TEST(SparseProfile, EnumerationAgreesOnSmallInstances) {
  // The acceptance bar: identical *sets* of stable schedules, not just
  // the two extremes, on brute-forceable instances.
  Rng rng(213);
  for (int trial = 0; trial < 8; ++trial) {
    const auto instance = random_instance(rng, 7, 5);
    const auto dense = build_nonsharing_profile(instance.taxis, instance.requests,
                                                kEuclidean, dense_params());
    const auto sparse = build_nonsharing_profile(instance.taxis, instance.requests,
                                                 kEuclidean, pruned_params());
    const AllStableResult dense_all = enumerate_all_stable(dense);
    const AllStableResult sparse_all = enumerate_all_stable(sparse);
    ASSERT_FALSE(dense_all.truncated);
    ASSERT_FALSE(sparse_all.truncated);
    EXPECT_EQ(matching_set(dense_all.matchings), matching_set(sparse_all.matchings))
        << "trial " << trial;
    EXPECT_EQ(matching_set(sparse_all.matchings),
              matching_set(brute_force_all_stable(sparse)))
        << "trial " << trial;
  }
}

TEST(SparseProfile, NetworkOracleStillPrunesExactly) {
  // Road distances dominate the straight-line metric the grid filters on
  // (snap gaps plus a path no shorter than the chord), so pruning stays
  // exact under the network oracle too. Since the sharded-cache rebuild
  // this oracle also allows concurrent queries, so dense and sparse both
  // go through the (potentially parallel) row fan-out.
  const geo::RoadNetwork network =
      geo::RoadNetwork::make_grid_city(6, 6, 2.0, /*jitter_km=*/0.2,
                                       /*closure_fraction=*/0.1, /*seed=*/5);
  const geo::NetworkOracle oracle(network);
  ASSERT_TRUE(oracle.capabilities().concurrent_queries);
  Rng rng(214);
  for (int trial = 0; trial < 3; ++trial) {
    const auto instance = random_instance(rng, 8, 12);
    PreferenceParams pruned = pruned_params();
    pruned.passenger_threshold_km = 5.0;
    PreferenceParams dense_p = pruned;
    dense_p.spatial_prune = false;
    const auto dense =
        build_nonsharing_profile(instance.taxis, instance.requests, oracle, dense_p);
    const auto sparse =
        build_nonsharing_profile(instance.taxis, instance.requests, oracle, pruned);
    expect_equivalent_profiles(dense, sparse);
    EXPECT_EQ(gale_shapley_requests(dense).request_to_taxi,
              gale_shapley_requests(sparse).request_to_taxi);
  }
}

/// Forwards every query to an inner oracle but reports concurrent queries
/// unsafe, forcing for_each_row down the serial path. Lets the tests pin
/// parallel-vs-serial equivalence on the same distance values.
class SerialOnlyOracle final : public geo::DistanceOracle {
 public:
  explicit SerialOnlyOracle(const geo::DistanceOracle& inner) : inner_(inner) {}
  double distance(const geo::Point& a, const geo::Point& b) const override {
    return inner_.distance(a, b);
  }
  std::vector<double> distances_from(const geo::Point& source,
                                     std::span<const geo::Point> targets) const override {
    return inner_.distances_from(source, targets);
  }
  std::vector<double> distances_to(std::span<const geo::Point> sources,
                                   const geo::Point& target) const override {
    return inner_.distances_to(sources, target);
  }
  geo::DistanceOracle::Capabilities capabilities() const noexcept override {
    auto caps = inner_.capabilities();
    caps.concurrent_queries = false;
    return caps;
  }

 private:
  const geo::DistanceOracle& inner_;
};

TEST(SparseProfile, NetworkParallelBuildMatchesSerialDenseBuild) {
  // The tentpole's acceptance bar: a large network-backed instance built
  // sparse through the (parallel-eligible) fan-out must produce the same
  // profile and matchings as the dense build forced down the serial path.
  const geo::RoadNetwork network =
      geo::RoadNetwork::make_grid_city(12, 12, 1.5, /*jitter_km=*/0.3,
                                       /*closure_fraction=*/0.15, /*seed=*/9);
  const geo::NetworkOracle oracle(network, /*cache_capacity=*/2048);
  ASSERT_TRUE(oracle.capabilities().concurrent_queries);
  const SerialOnlyOracle serial(oracle);

  Rng rng(218);
  const auto instance = random_instance(rng, 64, 96);  // clears the serial cutoff
  PreferenceParams pruned = pruned_params();
  pruned.passenger_threshold_km = 6.0;
  PreferenceParams dense_p = pruned;
  dense_p.spatial_prune = false;

  const auto dense_serial =
      build_nonsharing_profile(instance.taxis, instance.requests, serial, dense_p);
  const auto sparse_parallel =
      build_nonsharing_profile(instance.taxis, instance.requests, oracle, pruned);
  expect_equivalent_profiles(dense_serial, sparse_parallel);
  EXPECT_EQ(gale_shapley_requests(dense_serial).request_to_taxi,
            gale_shapley_requests(sparse_parallel).request_to_taxi);
  EXPECT_EQ(gale_shapley_taxis(dense_serial).request_to_taxi,
            gale_shapley_taxis(sparse_parallel).request_to_taxi);
}

TEST(SparseProfile, SharingDispatchAgreesWithDensePath) {
  Rng rng(215);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<trace::Taxi> taxis;
    for (int t = 0; t < 12; ++t) {
      taxis.push_back({t, {rng.uniform(0, 10), rng.uniform(0, 10)}, 4});
    }
    std::vector<trace::Request> requests;
    for (int r = 0; r < 10; ++r) {
      trace::Request request;
      request.id = r;
      request.pickup = {rng.uniform(0, 10), rng.uniform(0, 10)};
      request.dropoff = {rng.uniform(0, 10), rng.uniform(0, 10)};
      requests.push_back(request);
    }
    SharingParams pruned;
    pruned.preference.passenger_threshold_km = 4.0;
    pruned.grouping.detour_threshold_km = 3.0;
    SharingParams dense = pruned;
    dense.preference.spatial_prune = false;
    for (const ProposalSide side : {ProposalSide::kPassengers, ProposalSide::kTaxis}) {
      pruned.side = side;
      dense.side = side;
      const auto a = dispatch_sharing(taxis, requests, kEuclidean, pruned);
      const auto b = dispatch_sharing(taxis, requests, kEuclidean, dense);
      EXPECT_EQ(a.unserved_request_indices, b.unserved_request_indices);
      ASSERT_EQ(a.assignments.size(), b.assignments.size());
      for (std::size_t i = 0; i < a.assignments.size(); ++i) {
        EXPECT_EQ(a.assignments[i].taxi_index, b.assignments[i].taxi_index);
        EXPECT_EQ(a.assignments[i].request_indices, b.assignments[i].request_indices);
        EXPECT_DOUBLE_EQ(a.assignments[i].passenger_score, b.assignments[i].passenger_score);
        EXPECT_DOUBLE_EQ(a.assignments[i].taxi_score, b.assignments[i].taxi_score);
      }
    }
  }
}

TEST(SparseProfile, ParallelConstructionIsDeterministic) {
  Rng rng(216);
  // Large enough to clear the serial cutoff in for_each_row.
  const auto instance = random_instance(rng, 64, 64);
  const auto first = build_nonsharing_profile(instance.taxis, instance.requests,
                                              kEuclidean, pruned_params());
  const auto second = build_nonsharing_profile(instance.taxis, instance.requests,
                                               kEuclidean, pruned_params());
  ASSERT_EQ(first.request_count(), second.request_count());
  for (std::size_t r = 0; r < first.request_count(); ++r) {
    EXPECT_EQ(first.request_list(r), second.request_list(r));
  }
  for (std::size_t t = 0; t < first.taxi_count(); ++t) {
    EXPECT_EQ(first.taxi_list(t), second.taxi_list(t));
  }
}

}  // namespace
}  // namespace o2o::core
