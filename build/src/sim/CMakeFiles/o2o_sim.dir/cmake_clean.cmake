file(REMOVE_RECURSE
  "CMakeFiles/o2o_sim.dir/report_io.cpp.o"
  "CMakeFiles/o2o_sim.dir/report_io.cpp.o.d"
  "CMakeFiles/o2o_sim.dir/simulator.cpp.o"
  "CMakeFiles/o2o_sim.dir/simulator.cpp.o.d"
  "libo2o_sim.a"
  "libo2o_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/o2o_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
