# Empty compiler generated dependencies file for o2o_sim.
# This may be replaced when dependencies are built.
