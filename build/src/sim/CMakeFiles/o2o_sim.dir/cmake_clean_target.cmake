file(REMOVE_RECURSE
  "libo2o_sim.a"
)
