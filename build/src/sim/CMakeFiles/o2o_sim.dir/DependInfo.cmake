
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/report_io.cpp" "src/sim/CMakeFiles/o2o_sim.dir/report_io.cpp.o" "gcc" "src/sim/CMakeFiles/o2o_sim.dir/report_io.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/sim/CMakeFiles/o2o_sim.dir/simulator.cpp.o" "gcc" "src/sim/CMakeFiles/o2o_sim.dir/simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/index/CMakeFiles/o2o_index.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/o2o_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/o2o_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/o2o_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/o2o_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/o2o_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
