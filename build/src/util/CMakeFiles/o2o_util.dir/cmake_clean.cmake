file(REMOVE_RECURSE
  "CMakeFiles/o2o_util.dir/csv.cpp.o"
  "CMakeFiles/o2o_util.dir/csv.cpp.o.d"
  "CMakeFiles/o2o_util.dir/strings.cpp.o"
  "CMakeFiles/o2o_util.dir/strings.cpp.o.d"
  "CMakeFiles/o2o_util.dir/thread_pool.cpp.o"
  "CMakeFiles/o2o_util.dir/thread_pool.cpp.o.d"
  "libo2o_util.a"
  "libo2o_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/o2o_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
