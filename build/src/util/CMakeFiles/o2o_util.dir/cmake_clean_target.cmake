file(REMOVE_RECURSE
  "libo2o_util.a"
)
