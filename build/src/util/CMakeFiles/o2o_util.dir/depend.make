# Empty dependencies file for o2o_util.
# This may be replaced when dependencies are built.
