file(REMOVE_RECURSE
  "libo2o_trace.a"
)
