# Empty compiler generated dependencies file for o2o_trace.
# This may be replaced when dependencies are built.
