file(REMOVE_RECURSE
  "CMakeFiles/o2o_trace.dir/calibrate.cpp.o"
  "CMakeFiles/o2o_trace.dir/calibrate.cpp.o.d"
  "CMakeFiles/o2o_trace.dir/csv_trace.cpp.o"
  "CMakeFiles/o2o_trace.dir/csv_trace.cpp.o.d"
  "CMakeFiles/o2o_trace.dir/fleet.cpp.o"
  "CMakeFiles/o2o_trace.dir/fleet.cpp.o.d"
  "CMakeFiles/o2o_trace.dir/synthetic.cpp.o"
  "CMakeFiles/o2o_trace.dir/synthetic.cpp.o.d"
  "CMakeFiles/o2o_trace.dir/trace.cpp.o"
  "CMakeFiles/o2o_trace.dir/trace.cpp.o.d"
  "libo2o_trace.a"
  "libo2o_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/o2o_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
