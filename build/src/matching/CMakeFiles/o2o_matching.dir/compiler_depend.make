# Empty compiler generated dependencies file for o2o_matching.
# This may be replaced when dependencies are built.
