file(REMOVE_RECURSE
  "libo2o_matching.a"
)
