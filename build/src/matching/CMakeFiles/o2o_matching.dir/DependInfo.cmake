
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/matching/bottleneck.cpp" "src/matching/CMakeFiles/o2o_matching.dir/bottleneck.cpp.o" "gcc" "src/matching/CMakeFiles/o2o_matching.dir/bottleneck.cpp.o.d"
  "/root/repo/src/matching/brute_force.cpp" "src/matching/CMakeFiles/o2o_matching.dir/brute_force.cpp.o" "gcc" "src/matching/CMakeFiles/o2o_matching.dir/brute_force.cpp.o.d"
  "/root/repo/src/matching/cost_matrix.cpp" "src/matching/CMakeFiles/o2o_matching.dir/cost_matrix.cpp.o" "gcc" "src/matching/CMakeFiles/o2o_matching.dir/cost_matrix.cpp.o.d"
  "/root/repo/src/matching/greedy.cpp" "src/matching/CMakeFiles/o2o_matching.dir/greedy.cpp.o" "gcc" "src/matching/CMakeFiles/o2o_matching.dir/greedy.cpp.o.d"
  "/root/repo/src/matching/hopcroft_karp.cpp" "src/matching/CMakeFiles/o2o_matching.dir/hopcroft_karp.cpp.o" "gcc" "src/matching/CMakeFiles/o2o_matching.dir/hopcroft_karp.cpp.o.d"
  "/root/repo/src/matching/hungarian.cpp" "src/matching/CMakeFiles/o2o_matching.dir/hungarian.cpp.o" "gcc" "src/matching/CMakeFiles/o2o_matching.dir/hungarian.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/o2o_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
