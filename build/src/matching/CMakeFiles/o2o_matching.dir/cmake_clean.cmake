file(REMOVE_RECURSE
  "CMakeFiles/o2o_matching.dir/bottleneck.cpp.o"
  "CMakeFiles/o2o_matching.dir/bottleneck.cpp.o.d"
  "CMakeFiles/o2o_matching.dir/brute_force.cpp.o"
  "CMakeFiles/o2o_matching.dir/brute_force.cpp.o.d"
  "CMakeFiles/o2o_matching.dir/cost_matrix.cpp.o"
  "CMakeFiles/o2o_matching.dir/cost_matrix.cpp.o.d"
  "CMakeFiles/o2o_matching.dir/greedy.cpp.o"
  "CMakeFiles/o2o_matching.dir/greedy.cpp.o.d"
  "CMakeFiles/o2o_matching.dir/hopcroft_karp.cpp.o"
  "CMakeFiles/o2o_matching.dir/hopcroft_karp.cpp.o.d"
  "CMakeFiles/o2o_matching.dir/hungarian.cpp.o"
  "CMakeFiles/o2o_matching.dir/hungarian.cpp.o.d"
  "libo2o_matching.a"
  "libo2o_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/o2o_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
