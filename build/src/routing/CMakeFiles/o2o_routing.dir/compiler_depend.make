# Empty compiler generated dependencies file for o2o_routing.
# This may be replaced when dependencies are built.
