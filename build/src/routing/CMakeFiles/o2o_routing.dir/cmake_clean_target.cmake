file(REMOVE_RECURSE
  "libo2o_routing.a"
)
