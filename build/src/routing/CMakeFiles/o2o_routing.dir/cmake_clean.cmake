file(REMOVE_RECURSE
  "CMakeFiles/o2o_routing.dir/insertion.cpp.o"
  "CMakeFiles/o2o_routing.dir/insertion.cpp.o.d"
  "CMakeFiles/o2o_routing.dir/optimizer.cpp.o"
  "CMakeFiles/o2o_routing.dir/optimizer.cpp.o.d"
  "CMakeFiles/o2o_routing.dir/route.cpp.o"
  "CMakeFiles/o2o_routing.dir/route.cpp.o.d"
  "libo2o_routing.a"
  "libo2o_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/o2o_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
