# Empty dependencies file for o2o_baselines.
# This may be replaced when dependencies are built.
