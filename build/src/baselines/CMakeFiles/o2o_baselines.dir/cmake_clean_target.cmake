file(REMOVE_RECURSE
  "libo2o_baselines.a"
)
