file(REMOVE_RECURSE
  "CMakeFiles/o2o_baselines.dir/ilp.cpp.o"
  "CMakeFiles/o2o_baselines.dir/ilp.cpp.o.d"
  "CMakeFiles/o2o_baselines.dir/nonsharing.cpp.o"
  "CMakeFiles/o2o_baselines.dir/nonsharing.cpp.o.d"
  "CMakeFiles/o2o_baselines.dir/raii.cpp.o"
  "CMakeFiles/o2o_baselines.dir/raii.cpp.o.d"
  "CMakeFiles/o2o_baselines.dir/sarp.cpp.o"
  "CMakeFiles/o2o_baselines.dir/sarp.cpp.o.d"
  "CMakeFiles/o2o_baselines.dir/working_fleet.cpp.o"
  "CMakeFiles/o2o_baselines.dir/working_fleet.cpp.o.d"
  "libo2o_baselines.a"
  "libo2o_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/o2o_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
