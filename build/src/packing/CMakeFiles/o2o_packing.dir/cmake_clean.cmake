file(REMOVE_RECURSE
  "CMakeFiles/o2o_packing.dir/groups.cpp.o"
  "CMakeFiles/o2o_packing.dir/groups.cpp.o.d"
  "CMakeFiles/o2o_packing.dir/set_packing.cpp.o"
  "CMakeFiles/o2o_packing.dir/set_packing.cpp.o.d"
  "libo2o_packing.a"
  "libo2o_packing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/o2o_packing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
