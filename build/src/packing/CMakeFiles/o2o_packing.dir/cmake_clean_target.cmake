file(REMOVE_RECURSE
  "libo2o_packing.a"
)
