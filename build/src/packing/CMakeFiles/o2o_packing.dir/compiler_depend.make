# Empty compiler generated dependencies file for o2o_packing.
# This may be replaced when dependencies are built.
