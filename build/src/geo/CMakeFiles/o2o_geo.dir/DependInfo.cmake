
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geo/projection.cpp" "src/geo/CMakeFiles/o2o_geo.dir/projection.cpp.o" "gcc" "src/geo/CMakeFiles/o2o_geo.dir/projection.cpp.o.d"
  "/root/repo/src/geo/road_network.cpp" "src/geo/CMakeFiles/o2o_geo.dir/road_network.cpp.o" "gcc" "src/geo/CMakeFiles/o2o_geo.dir/road_network.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/o2o_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
