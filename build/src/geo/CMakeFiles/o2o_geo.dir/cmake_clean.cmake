file(REMOVE_RECURSE
  "CMakeFiles/o2o_geo.dir/projection.cpp.o"
  "CMakeFiles/o2o_geo.dir/projection.cpp.o.d"
  "CMakeFiles/o2o_geo.dir/road_network.cpp.o"
  "CMakeFiles/o2o_geo.dir/road_network.cpp.o.d"
  "libo2o_geo.a"
  "libo2o_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/o2o_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
