# Empty dependencies file for o2o_geo.
# This may be replaced when dependencies are built.
