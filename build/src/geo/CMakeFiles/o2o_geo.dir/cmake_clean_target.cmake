file(REMOVE_RECURSE
  "libo2o_geo.a"
)
