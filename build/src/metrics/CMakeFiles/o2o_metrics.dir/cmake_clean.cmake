file(REMOVE_RECURSE
  "CMakeFiles/o2o_metrics.dir/bootstrap.cpp.o"
  "CMakeFiles/o2o_metrics.dir/bootstrap.cpp.o.d"
  "CMakeFiles/o2o_metrics.dir/cdf.cpp.o"
  "CMakeFiles/o2o_metrics.dir/cdf.cpp.o.d"
  "libo2o_metrics.a"
  "libo2o_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/o2o_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
