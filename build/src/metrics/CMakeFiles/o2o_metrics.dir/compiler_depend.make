# Empty compiler generated dependencies file for o2o_metrics.
# This may be replaced when dependencies are built.
