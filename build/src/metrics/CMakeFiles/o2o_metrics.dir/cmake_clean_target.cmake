file(REMOVE_RECURSE
  "libo2o_metrics.a"
)
