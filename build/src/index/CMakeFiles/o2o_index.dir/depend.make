# Empty dependencies file for o2o_index.
# This may be replaced when dependencies are built.
