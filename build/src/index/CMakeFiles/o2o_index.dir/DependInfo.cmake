
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/index/spatial_grid.cpp" "src/index/CMakeFiles/o2o_index.dir/spatial_grid.cpp.o" "gcc" "src/index/CMakeFiles/o2o_index.dir/spatial_grid.cpp.o.d"
  "/root/repo/src/index/spatio_temporal.cpp" "src/index/CMakeFiles/o2o_index.dir/spatio_temporal.cpp.o" "gcc" "src/index/CMakeFiles/o2o_index.dir/spatio_temporal.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/o2o_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/o2o_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
