file(REMOVE_RECURSE
  "CMakeFiles/o2o_index.dir/spatial_grid.cpp.o"
  "CMakeFiles/o2o_index.dir/spatial_grid.cpp.o.d"
  "CMakeFiles/o2o_index.dir/spatio_temporal.cpp.o"
  "CMakeFiles/o2o_index.dir/spatio_temporal.cpp.o.d"
  "libo2o_index.a"
  "libo2o_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/o2o_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
