file(REMOVE_RECURSE
  "libo2o_index.a"
)
