file(REMOVE_RECURSE
  "libo2o_core.a"
)
