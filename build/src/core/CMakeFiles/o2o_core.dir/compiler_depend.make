# Empty compiler generated dependencies file for o2o_core.
# This may be replaced when dependencies are built.
