
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/all_stable.cpp" "src/core/CMakeFiles/o2o_core.dir/all_stable.cpp.o" "gcc" "src/core/CMakeFiles/o2o_core.dir/all_stable.cpp.o.d"
  "/root/repo/src/core/dispatchers.cpp" "src/core/CMakeFiles/o2o_core.dir/dispatchers.cpp.o" "gcc" "src/core/CMakeFiles/o2o_core.dir/dispatchers.cpp.o.d"
  "/root/repo/src/core/median.cpp" "src/core/CMakeFiles/o2o_core.dir/median.cpp.o" "gcc" "src/core/CMakeFiles/o2o_core.dir/median.cpp.o.d"
  "/root/repo/src/core/preferences.cpp" "src/core/CMakeFiles/o2o_core.dir/preferences.cpp.o" "gcc" "src/core/CMakeFiles/o2o_core.dir/preferences.cpp.o.d"
  "/root/repo/src/core/revenue.cpp" "src/core/CMakeFiles/o2o_core.dir/revenue.cpp.o" "gcc" "src/core/CMakeFiles/o2o_core.dir/revenue.cpp.o.d"
  "/root/repo/src/core/selectors.cpp" "src/core/CMakeFiles/o2o_core.dir/selectors.cpp.o" "gcc" "src/core/CMakeFiles/o2o_core.dir/selectors.cpp.o.d"
  "/root/repo/src/core/sharing.cpp" "src/core/CMakeFiles/o2o_core.dir/sharing.cpp.o" "gcc" "src/core/CMakeFiles/o2o_core.dir/sharing.cpp.o.d"
  "/root/repo/src/core/stable_matching.cpp" "src/core/CMakeFiles/o2o_core.dir/stable_matching.cpp.o" "gcc" "src/core/CMakeFiles/o2o_core.dir/stable_matching.cpp.o.d"
  "/root/repo/src/core/ties.cpp" "src/core/CMakeFiles/o2o_core.dir/ties.cpp.o" "gcc" "src/core/CMakeFiles/o2o_core.dir/ties.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/o2o_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/o2o_index.dir/DependInfo.cmake"
  "/root/repo/build/src/packing/CMakeFiles/o2o_packing.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/o2o_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/o2o_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/o2o_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/o2o_util.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/o2o_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
