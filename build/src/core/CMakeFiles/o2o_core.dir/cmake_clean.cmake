file(REMOVE_RECURSE
  "CMakeFiles/o2o_core.dir/all_stable.cpp.o"
  "CMakeFiles/o2o_core.dir/all_stable.cpp.o.d"
  "CMakeFiles/o2o_core.dir/dispatchers.cpp.o"
  "CMakeFiles/o2o_core.dir/dispatchers.cpp.o.d"
  "CMakeFiles/o2o_core.dir/median.cpp.o"
  "CMakeFiles/o2o_core.dir/median.cpp.o.d"
  "CMakeFiles/o2o_core.dir/preferences.cpp.o"
  "CMakeFiles/o2o_core.dir/preferences.cpp.o.d"
  "CMakeFiles/o2o_core.dir/revenue.cpp.o"
  "CMakeFiles/o2o_core.dir/revenue.cpp.o.d"
  "CMakeFiles/o2o_core.dir/selectors.cpp.o"
  "CMakeFiles/o2o_core.dir/selectors.cpp.o.d"
  "CMakeFiles/o2o_core.dir/sharing.cpp.o"
  "CMakeFiles/o2o_core.dir/sharing.cpp.o.d"
  "CMakeFiles/o2o_core.dir/stable_matching.cpp.o"
  "CMakeFiles/o2o_core.dir/stable_matching.cpp.o.d"
  "CMakeFiles/o2o_core.dir/ties.cpp.o"
  "CMakeFiles/o2o_core.dir/ties.cpp.o.d"
  "libo2o_core.a"
  "libo2o_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/o2o_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
