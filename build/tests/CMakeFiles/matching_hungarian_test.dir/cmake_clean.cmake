file(REMOVE_RECURSE
  "CMakeFiles/matching_hungarian_test.dir/matching/hungarian_test.cpp.o"
  "CMakeFiles/matching_hungarian_test.dir/matching/hungarian_test.cpp.o.d"
  "matching_hungarian_test"
  "matching_hungarian_test.pdb"
  "matching_hungarian_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matching_hungarian_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
