file(REMOVE_RECURSE
  "CMakeFiles/core_ties_test.dir/core/ties_test.cpp.o"
  "CMakeFiles/core_ties_test.dir/core/ties_test.cpp.o.d"
  "core_ties_test"
  "core_ties_test.pdb"
  "core_ties_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_ties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
