# Empty compiler generated dependencies file for core_ties_test.
# This may be replaced when dependencies are built.
