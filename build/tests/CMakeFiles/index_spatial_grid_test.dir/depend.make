# Empty dependencies file for index_spatial_grid_test.
# This may be replaced when dependencies are built.
