file(REMOVE_RECURSE
  "CMakeFiles/sim_empty_frame_test.dir/sim/empty_frame_test.cpp.o"
  "CMakeFiles/sim_empty_frame_test.dir/sim/empty_frame_test.cpp.o.d"
  "sim_empty_frame_test"
  "sim_empty_frame_test.pdb"
  "sim_empty_frame_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_empty_frame_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
