# Empty dependencies file for sim_empty_frame_test.
# This may be replaced when dependencies are built.
