# Empty compiler generated dependencies file for trace_synthetic_test.
# This may be replaced when dependencies are built.
