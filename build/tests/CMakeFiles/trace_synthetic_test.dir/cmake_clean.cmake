file(REMOVE_RECURSE
  "CMakeFiles/trace_synthetic_test.dir/trace/synthetic_test.cpp.o"
  "CMakeFiles/trace_synthetic_test.dir/trace/synthetic_test.cpp.o.d"
  "trace_synthetic_test"
  "trace_synthetic_test.pdb"
  "trace_synthetic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_synthetic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
