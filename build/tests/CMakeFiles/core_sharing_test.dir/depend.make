# Empty dependencies file for core_sharing_test.
# This may be replaced when dependencies are built.
