file(REMOVE_RECURSE
  "CMakeFiles/core_sharing_test.dir/core/sharing_test.cpp.o"
  "CMakeFiles/core_sharing_test.dir/core/sharing_test.cpp.o.d"
  "core_sharing_test"
  "core_sharing_test.pdb"
  "core_sharing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_sharing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
