file(REMOVE_RECURSE
  "CMakeFiles/trace_calibrate_test.dir/trace/calibrate_test.cpp.o"
  "CMakeFiles/trace_calibrate_test.dir/trace/calibrate_test.cpp.o.d"
  "trace_calibrate_test"
  "trace_calibrate_test.pdb"
  "trace_calibrate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_calibrate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
