# Empty dependencies file for index_spatio_temporal_test.
# This may be replaced when dependencies are built.
