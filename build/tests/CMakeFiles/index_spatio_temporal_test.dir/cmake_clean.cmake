file(REMOVE_RECURSE
  "CMakeFiles/index_spatio_temporal_test.dir/index/spatio_temporal_test.cpp.o"
  "CMakeFiles/index_spatio_temporal_test.dir/index/spatio_temporal_test.cpp.o.d"
  "index_spatio_temporal_test"
  "index_spatio_temporal_test.pdb"
  "index_spatio_temporal_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/index_spatio_temporal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
