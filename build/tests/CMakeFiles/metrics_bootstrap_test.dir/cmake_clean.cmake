file(REMOVE_RECURSE
  "CMakeFiles/metrics_bootstrap_test.dir/metrics/bootstrap_test.cpp.o"
  "CMakeFiles/metrics_bootstrap_test.dir/metrics/bootstrap_test.cpp.o.d"
  "metrics_bootstrap_test"
  "metrics_bootstrap_test.pdb"
  "metrics_bootstrap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metrics_bootstrap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
