# Empty compiler generated dependencies file for metrics_bootstrap_test.
# This may be replaced when dependencies are built.
