file(REMOVE_RECURSE
  "CMakeFiles/routing_optimizer_test.dir/routing/optimizer_test.cpp.o"
  "CMakeFiles/routing_optimizer_test.dir/routing/optimizer_test.cpp.o.d"
  "routing_optimizer_test"
  "routing_optimizer_test.pdb"
  "routing_optimizer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/routing_optimizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
