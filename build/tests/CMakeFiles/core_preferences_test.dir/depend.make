# Empty dependencies file for core_preferences_test.
# This may be replaced when dependencies are built.
