file(REMOVE_RECURSE
  "CMakeFiles/core_preferences_test.dir/core/preferences_test.cpp.o"
  "CMakeFiles/core_preferences_test.dir/core/preferences_test.cpp.o.d"
  "core_preferences_test"
  "core_preferences_test.pdb"
  "core_preferences_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_preferences_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
