file(REMOVE_RECURSE
  "CMakeFiles/sim_enroute_test.dir/sim/enroute_test.cpp.o"
  "CMakeFiles/sim_enroute_test.dir/sim/enroute_test.cpp.o.d"
  "sim_enroute_test"
  "sim_enroute_test.pdb"
  "sim_enroute_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_enroute_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
