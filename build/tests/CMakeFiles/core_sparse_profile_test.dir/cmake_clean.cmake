file(REMOVE_RECURSE
  "CMakeFiles/core_sparse_profile_test.dir/core/sparse_profile_test.cpp.o"
  "CMakeFiles/core_sparse_profile_test.dir/core/sparse_profile_test.cpp.o.d"
  "core_sparse_profile_test"
  "core_sparse_profile_test.pdb"
  "core_sparse_profile_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_sparse_profile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
