file(REMOVE_RECURSE
  "CMakeFiles/geo_projection_test.dir/geo/projection_test.cpp.o"
  "CMakeFiles/geo_projection_test.dir/geo/projection_test.cpp.o.d"
  "geo_projection_test"
  "geo_projection_test.pdb"
  "geo_projection_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geo_projection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
