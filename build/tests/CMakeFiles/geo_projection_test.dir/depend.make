# Empty dependencies file for geo_projection_test.
# This may be replaced when dependencies are built.
