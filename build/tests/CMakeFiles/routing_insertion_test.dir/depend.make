# Empty dependencies file for routing_insertion_test.
# This may be replaced when dependencies are built.
