file(REMOVE_RECURSE
  "CMakeFiles/routing_insertion_test.dir/routing/insertion_test.cpp.o"
  "CMakeFiles/routing_insertion_test.dir/routing/insertion_test.cpp.o.d"
  "routing_insertion_test"
  "routing_insertion_test.pdb"
  "routing_insertion_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/routing_insertion_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
