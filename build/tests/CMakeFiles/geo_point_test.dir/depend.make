# Empty dependencies file for geo_point_test.
# This may be replaced when dependencies are built.
