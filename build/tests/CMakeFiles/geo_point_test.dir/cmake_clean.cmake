file(REMOVE_RECURSE
  "CMakeFiles/geo_point_test.dir/geo/point_test.cpp.o"
  "CMakeFiles/geo_point_test.dir/geo/point_test.cpp.o.d"
  "geo_point_test"
  "geo_point_test.pdb"
  "geo_point_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geo_point_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
