file(REMOVE_RECURSE
  "CMakeFiles/core_median_test.dir/core/median_test.cpp.o"
  "CMakeFiles/core_median_test.dir/core/median_test.cpp.o.d"
  "core_median_test"
  "core_median_test.pdb"
  "core_median_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_median_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
