# Empty compiler generated dependencies file for core_median_test.
# This may be replaced when dependencies are built.
