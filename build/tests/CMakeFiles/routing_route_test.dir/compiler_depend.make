# Empty compiler generated dependencies file for routing_route_test.
# This may be replaced when dependencies are built.
