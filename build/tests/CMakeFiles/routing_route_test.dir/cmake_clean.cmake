file(REMOVE_RECURSE
  "CMakeFiles/routing_route_test.dir/routing/route_test.cpp.o"
  "CMakeFiles/routing_route_test.dir/routing/route_test.cpp.o.d"
  "routing_route_test"
  "routing_route_test.pdb"
  "routing_route_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/routing_route_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
