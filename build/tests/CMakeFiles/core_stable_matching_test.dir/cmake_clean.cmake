file(REMOVE_RECURSE
  "CMakeFiles/core_stable_matching_test.dir/core/stable_matching_test.cpp.o"
  "CMakeFiles/core_stable_matching_test.dir/core/stable_matching_test.cpp.o.d"
  "core_stable_matching_test"
  "core_stable_matching_test.pdb"
  "core_stable_matching_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_stable_matching_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
