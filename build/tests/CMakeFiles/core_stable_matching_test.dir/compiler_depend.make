# Empty compiler generated dependencies file for core_stable_matching_test.
# This may be replaced when dependencies are built.
