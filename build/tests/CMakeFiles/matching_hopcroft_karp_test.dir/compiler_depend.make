# Empty compiler generated dependencies file for matching_hopcroft_karp_test.
# This may be replaced when dependencies are built.
