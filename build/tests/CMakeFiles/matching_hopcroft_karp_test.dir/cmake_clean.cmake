file(REMOVE_RECURSE
  "CMakeFiles/matching_hopcroft_karp_test.dir/matching/hopcroft_karp_test.cpp.o"
  "CMakeFiles/matching_hopcroft_karp_test.dir/matching/hopcroft_karp_test.cpp.o.d"
  "matching_hopcroft_karp_test"
  "matching_hopcroft_karp_test.pdb"
  "matching_hopcroft_karp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matching_hopcroft_karp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
