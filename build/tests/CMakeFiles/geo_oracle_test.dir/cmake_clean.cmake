file(REMOVE_RECURSE
  "CMakeFiles/geo_oracle_test.dir/geo/oracle_test.cpp.o"
  "CMakeFiles/geo_oracle_test.dir/geo/oracle_test.cpp.o.d"
  "geo_oracle_test"
  "geo_oracle_test.pdb"
  "geo_oracle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geo_oracle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
