file(REMOVE_RECURSE
  "CMakeFiles/core_dispatchers_test.dir/core/dispatchers_test.cpp.o"
  "CMakeFiles/core_dispatchers_test.dir/core/dispatchers_test.cpp.o.d"
  "core_dispatchers_test"
  "core_dispatchers_test.pdb"
  "core_dispatchers_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_dispatchers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
