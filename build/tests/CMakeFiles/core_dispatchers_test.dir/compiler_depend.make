# Empty compiler generated dependencies file for core_dispatchers_test.
# This may be replaced when dependencies are built.
