file(REMOVE_RECURSE
  "CMakeFiles/util_contracts_test.dir/util/contracts_test.cpp.o"
  "CMakeFiles/util_contracts_test.dir/util/contracts_test.cpp.o.d"
  "util_contracts_test"
  "util_contracts_test.pdb"
  "util_contracts_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_contracts_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
