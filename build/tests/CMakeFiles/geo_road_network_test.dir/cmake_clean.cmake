file(REMOVE_RECURSE
  "CMakeFiles/geo_road_network_test.dir/geo/road_network_test.cpp.o"
  "CMakeFiles/geo_road_network_test.dir/geo/road_network_test.cpp.o.d"
  "geo_road_network_test"
  "geo_road_network_test.pdb"
  "geo_road_network_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geo_road_network_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
