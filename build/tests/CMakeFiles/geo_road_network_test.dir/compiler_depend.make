# Empty compiler generated dependencies file for geo_road_network_test.
# This may be replaced when dependencies are built.
