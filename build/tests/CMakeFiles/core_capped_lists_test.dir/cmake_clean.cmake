file(REMOVE_RECURSE
  "CMakeFiles/core_capped_lists_test.dir/core/capped_lists_test.cpp.o"
  "CMakeFiles/core_capped_lists_test.dir/core/capped_lists_test.cpp.o.d"
  "core_capped_lists_test"
  "core_capped_lists_test.pdb"
  "core_capped_lists_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_capped_lists_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
