# Empty dependencies file for packing_groups_test.
# This may be replaced when dependencies are built.
