file(REMOVE_RECURSE
  "CMakeFiles/packing_groups_test.dir/packing/groups_test.cpp.o"
  "CMakeFiles/packing_groups_test.dir/packing/groups_test.cpp.o.d"
  "packing_groups_test"
  "packing_groups_test.pdb"
  "packing_groups_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/packing_groups_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
