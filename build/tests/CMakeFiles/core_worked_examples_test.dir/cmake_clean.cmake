file(REMOVE_RECURSE
  "CMakeFiles/core_worked_examples_test.dir/core/worked_examples_test.cpp.o"
  "CMakeFiles/core_worked_examples_test.dir/core/worked_examples_test.cpp.o.d"
  "core_worked_examples_test"
  "core_worked_examples_test.pdb"
  "core_worked_examples_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_worked_examples_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
