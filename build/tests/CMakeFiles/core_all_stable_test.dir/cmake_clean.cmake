file(REMOVE_RECURSE
  "CMakeFiles/core_all_stable_test.dir/core/all_stable_test.cpp.o"
  "CMakeFiles/core_all_stable_test.dir/core/all_stable_test.cpp.o.d"
  "core_all_stable_test"
  "core_all_stable_test.pdb"
  "core_all_stable_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_all_stable_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
