# Empty dependencies file for core_all_stable_test.
# This may be replaced when dependencies are built.
