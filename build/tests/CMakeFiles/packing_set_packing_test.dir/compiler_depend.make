# Empty compiler generated dependencies file for packing_set_packing_test.
# This may be replaced when dependencies are built.
