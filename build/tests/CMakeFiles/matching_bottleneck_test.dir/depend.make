# Empty dependencies file for matching_bottleneck_test.
# This may be replaced when dependencies are built.
