file(REMOVE_RECURSE
  "CMakeFiles/matching_bottleneck_test.dir/matching/bottleneck_test.cpp.o"
  "CMakeFiles/matching_bottleneck_test.dir/matching/bottleneck_test.cpp.o.d"
  "matching_bottleneck_test"
  "matching_bottleneck_test.pdb"
  "matching_bottleneck_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matching_bottleneck_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
