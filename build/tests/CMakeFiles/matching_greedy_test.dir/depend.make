# Empty dependencies file for matching_greedy_test.
# This may be replaced when dependencies are built.
