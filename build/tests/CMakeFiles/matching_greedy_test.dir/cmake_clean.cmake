file(REMOVE_RECURSE
  "CMakeFiles/matching_greedy_test.dir/matching/greedy_test.cpp.o"
  "CMakeFiles/matching_greedy_test.dir/matching/greedy_test.cpp.o.d"
  "matching_greedy_test"
  "matching_greedy_test.pdb"
  "matching_greedy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matching_greedy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
