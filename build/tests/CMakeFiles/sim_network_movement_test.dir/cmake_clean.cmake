file(REMOVE_RECURSE
  "CMakeFiles/sim_network_movement_test.dir/sim/network_movement_test.cpp.o"
  "CMakeFiles/sim_network_movement_test.dir/sim/network_movement_test.cpp.o.d"
  "sim_network_movement_test"
  "sim_network_movement_test.pdb"
  "sim_network_movement_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_network_movement_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
