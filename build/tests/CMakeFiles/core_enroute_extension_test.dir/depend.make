# Empty dependencies file for core_enroute_extension_test.
# This may be replaced when dependencies are built.
