file(REMOVE_RECURSE
  "CMakeFiles/trace_fleet_test.dir/trace/fleet_test.cpp.o"
  "CMakeFiles/trace_fleet_test.dir/trace/fleet_test.cpp.o.d"
  "trace_fleet_test"
  "trace_fleet_test.pdb"
  "trace_fleet_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_fleet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
