# Empty compiler generated dependencies file for trace_fleet_test.
# This may be replaced when dependencies are built.
