file(REMOVE_RECURSE
  "CMakeFiles/core_revenue_test.dir/core/revenue_test.cpp.o"
  "CMakeFiles/core_revenue_test.dir/core/revenue_test.cpp.o.d"
  "core_revenue_test"
  "core_revenue_test.pdb"
  "core_revenue_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_revenue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
