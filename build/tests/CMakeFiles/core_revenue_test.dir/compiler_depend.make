# Empty compiler generated dependencies file for core_revenue_test.
# This may be replaced when dependencies are built.
