# Empty dependencies file for baselines_nonsharing_test.
# This may be replaced when dependencies are built.
