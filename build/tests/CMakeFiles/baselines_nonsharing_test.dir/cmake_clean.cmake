file(REMOVE_RECURSE
  "CMakeFiles/baselines_nonsharing_test.dir/baselines/nonsharing_test.cpp.o"
  "CMakeFiles/baselines_nonsharing_test.dir/baselines/nonsharing_test.cpp.o.d"
  "baselines_nonsharing_test"
  "baselines_nonsharing_test.pdb"
  "baselines_nonsharing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines_nonsharing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
