# Empty dependencies file for sim_report_io_test.
# This may be replaced when dependencies are built.
