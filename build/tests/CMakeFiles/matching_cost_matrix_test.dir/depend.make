# Empty dependencies file for matching_cost_matrix_test.
# This may be replaced when dependencies are built.
