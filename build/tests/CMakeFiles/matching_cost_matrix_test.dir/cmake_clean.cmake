file(REMOVE_RECURSE
  "CMakeFiles/matching_cost_matrix_test.dir/matching/cost_matrix_test.cpp.o"
  "CMakeFiles/matching_cost_matrix_test.dir/matching/cost_matrix_test.cpp.o.d"
  "matching_cost_matrix_test"
  "matching_cost_matrix_test.pdb"
  "matching_cost_matrix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matching_cost_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
