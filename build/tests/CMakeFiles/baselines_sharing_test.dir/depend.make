# Empty dependencies file for baselines_sharing_test.
# This may be replaced when dependencies are built.
