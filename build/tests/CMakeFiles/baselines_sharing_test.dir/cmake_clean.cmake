file(REMOVE_RECURSE
  "CMakeFiles/baselines_sharing_test.dir/baselines/sharing_test.cpp.o"
  "CMakeFiles/baselines_sharing_test.dir/baselines/sharing_test.cpp.o.d"
  "baselines_sharing_test"
  "baselines_sharing_test.pdb"
  "baselines_sharing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines_sharing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
