# Empty dependencies file for stability_lab.
# This may be replaced when dependencies are built.
