file(REMOVE_RECURSE
  "CMakeFiles/stability_lab.dir/stability_lab.cpp.o"
  "CMakeFiles/stability_lab.dir/stability_lab.cpp.o.d"
  "stability_lab"
  "stability_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stability_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
