# Empty dependencies file for city_day.
# This may be replaced when dependencies are built.
