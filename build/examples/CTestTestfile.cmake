# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_ride_sharing "/root/repo/build/examples/ride_sharing")
set_tests_properties(example_ride_sharing PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_stability_lab "/root/repo/build/examples/stability_lab")
set_tests_properties(example_stability_lab PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_city_day "/root/repo/build/examples/city_day" "120" "0.5" "7")
set_tests_properties(example_city_day PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_trace_tools "/root/repo/build/examples/trace_tools" "generate" "boston" "2" "5")
set_tests_properties(example_trace_tools PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
