# Empty compiler generated dependencies file for fig7_clock_time.
# This may be replaced when dependencies are built.
