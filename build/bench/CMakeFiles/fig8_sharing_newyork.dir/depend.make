# Empty dependencies file for fig8_sharing_newyork.
# This may be replaced when dependencies are built.
