file(REMOVE_RECURSE
  "CMakeFiles/fig8_sharing_newyork.dir/fig8_sharing_newyork.cpp.o"
  "CMakeFiles/fig8_sharing_newyork.dir/fig8_sharing_newyork.cpp.o.d"
  "fig8_sharing_newyork"
  "fig8_sharing_newyork.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_sharing_newyork.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
