# Empty compiler generated dependencies file for fig4_nonsharing_newyork.
# This may be replaced when dependencies are built.
