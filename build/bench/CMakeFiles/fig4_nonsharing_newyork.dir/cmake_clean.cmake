file(REMOVE_RECURSE
  "CMakeFiles/fig4_nonsharing_newyork.dir/fig4_nonsharing_newyork.cpp.o"
  "CMakeFiles/fig4_nonsharing_newyork.dir/fig4_nonsharing_newyork.cpp.o.d"
  "fig4_nonsharing_newyork"
  "fig4_nonsharing_newyork.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_nonsharing_newyork.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
