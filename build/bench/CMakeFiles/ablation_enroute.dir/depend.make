# Empty dependencies file for ablation_enroute.
# This may be replaced when dependencies are built.
