
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_enroute.cpp" "bench/CMakeFiles/ablation_enroute.dir/ablation_enroute.cpp.o" "gcc" "bench/CMakeFiles/ablation_enroute.dir/ablation_enroute.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/o2o_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/o2o_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/o2o_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/packing/CMakeFiles/o2o_packing.dir/DependInfo.cmake"
  "/root/repo/build/src/matching/CMakeFiles/o2o_matching.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/o2o_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/o2o_index.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/o2o_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/o2o_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/o2o_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/o2o_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/o2o_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
