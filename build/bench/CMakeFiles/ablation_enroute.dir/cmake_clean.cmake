file(REMOVE_RECURSE
  "CMakeFiles/ablation_enroute.dir/ablation_enroute.cpp.o"
  "CMakeFiles/ablation_enroute.dir/ablation_enroute.cpp.o.d"
  "ablation_enroute"
  "ablation_enroute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_enroute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
