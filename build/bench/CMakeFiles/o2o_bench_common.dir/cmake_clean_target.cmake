file(REMOVE_RECURSE
  "libo2o_bench_common.a"
)
