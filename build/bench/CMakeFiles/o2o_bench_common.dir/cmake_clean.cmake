file(REMOVE_RECURSE
  "CMakeFiles/o2o_bench_common.dir/common.cpp.o"
  "CMakeFiles/o2o_bench_common.dir/common.cpp.o.d"
  "libo2o_bench_common.a"
  "libo2o_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/o2o_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
