# Empty compiler generated dependencies file for fig5_nonsharing_boston.
# This may be replaced when dependencies are built.
