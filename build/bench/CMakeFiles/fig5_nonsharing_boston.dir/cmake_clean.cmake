file(REMOVE_RECURSE
  "CMakeFiles/fig5_nonsharing_boston.dir/fig5_nonsharing_boston.cpp.o"
  "CMakeFiles/fig5_nonsharing_boston.dir/fig5_nonsharing_boston.cpp.o.d"
  "fig5_nonsharing_boston"
  "fig5_nonsharing_boston.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_nonsharing_boston.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
