# Empty compiler generated dependencies file for micro_sharing.
# This may be replaced when dependencies are built.
