file(REMOVE_RECURSE
  "CMakeFiles/micro_sharing.dir/micro_sharing.cpp.o"
  "CMakeFiles/micro_sharing.dir/micro_sharing.cpp.o.d"
  "micro_sharing"
  "micro_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
