# Empty compiler generated dependencies file for fig9_sharing_boston.
# This may be replaced when dependencies are built.
