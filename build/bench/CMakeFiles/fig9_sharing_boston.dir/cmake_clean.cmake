file(REMOVE_RECURSE
  "CMakeFiles/fig9_sharing_boston.dir/fig9_sharing_boston.cpp.o"
  "CMakeFiles/fig9_sharing_boston.dir/fig9_sharing_boston.cpp.o.d"
  "fig9_sharing_boston"
  "fig9_sharing_boston.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_sharing_boston.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
