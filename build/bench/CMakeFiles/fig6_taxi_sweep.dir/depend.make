# Empty dependencies file for fig6_taxi_sweep.
# This may be replaced when dependencies are built.
